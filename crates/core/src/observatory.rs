//! Core half of the cost-model observatory: join the annotator's Eq. 1–3
//! placement decisions (predicted) against the transfer ledger and trace
//! counters of the finished run (observed). The record types, error
//! arithmetic, and aggregation live in [`xdb_obs::costmodel`]; this module
//! owns everything that needs the cluster — topology pricing, engine
//! profiles, and the side-effect-free calibration factors.
//!
//! Purely observational: the join reads already-final state (decisions,
//! the script-ordered ledger slice this query appended, trace counters)
//! and never writes metrics, spans, or ledger entries — so enabling it
//! cannot perturb any deterministic observable.

use crate::annotate::PlacementDecision;
use crate::calibration::Calibration;
use crate::cost::movement_cost_split;
use xdb_engine::cluster::Cluster;
use xdb_net::{params, Movement, NodeId, Purpose, Transfer};
use xdb_obs::costmodel::{CandidateObs, CostObservation, DecisionObs, EdgeJoin};

fn movement_label(m: Movement) -> &'static str {
    match m {
        Movement::Implicit => "implicit",
        Movement::Explicit => "explicit",
    }
}

fn movement_purpose(m: Movement) -> Purpose {
    match m {
        Movement::Implicit => Purpose::InterDbmsPipeline,
        Movement::Explicit => Purpose::Materialization,
    }
}

/// Dominant codec of an observed edge by encoded bytes (lexicographically
/// first name on ties — `codec_bytes` order is deterministic, but the key
/// should not depend on it).
fn dominant_codec(t: &Transfer) -> String {
    let mut best: Option<(&str, u64)> = None;
    for (name, bytes) in &t.codec_bytes {
        let better = match best {
            None => true,
            Some((bn, bb)) => *bytes > bb || (*bytes == bb && *name < bn),
        };
        if better {
            best = Some((name, *bytes));
        }
    }
    best.map(|(n, _)| n.to_string())
        .unwrap_or_else(|| "none".to_string())
}

/// Join one query's placement decisions against the ledger records it
/// appended (`fresh` — script order, hence deterministic) and its
/// per-engine statement work. Each predicted movement claims the first
/// unclaimed fresh record with matching `(from, to, purpose)`.
pub(crate) fn build_cost_observation(
    cluster: &Cluster,
    decisions: &[PlacementDecision],
    fresh: &[Transfer],
    statements: &[(String, f64)],
) -> CostObservation {
    if decisions.is_empty() {
        return CostObservation::default();
    }
    let cal = Calibration::analytic(cluster);
    let profile = |n: &NodeId| {
        cluster
            .engine(n.as_str())
            .map(|e| e.profile.clone())
            .unwrap_or_else(|_| xdb_engine::EngineProfile::postgres())
    };
    let mut claimed = vec![false; fresh.len()];
    let mut obs = CostObservation::default();
    for (i, d) in decisions.iter().enumerate() {
        let chosen = &d.chosen;
        let consumer = profile(&chosen.dbms);
        let mut chosen_marked = false;
        let mut best_rejected: Option<f64> = None;
        let candidates: Vec<CandidateObs> = d
            .candidates
            .iter()
            .map(|c| {
                let picked = !chosen_marked
                    && c.dbms == chosen.dbms
                    && c.left_move == chosen.left_move
                    && c.right_move == chosen.right_move;
                if picked {
                    chosen_marked = true;
                } else {
                    best_rejected = Some(match best_rejected {
                        Some(b) if b <= c.cost => b,
                        _ => c.cost,
                    });
                }
                CandidateObs {
                    dbms: c.dbms.as_str().to_string(),
                    left_move: movement_label(c.left_move).to_string(),
                    right_move: movement_label(c.right_move).to_string(),
                    predicted_ms: c.cost,
                    wire_left_ms: c.components.wire_left_ms,
                    wire_right_ms: c.components.wire_right_ms,
                    move_left_ms: c.components.move_left_ms,
                    move_right_ms: c.components.move_right_ms,
                    exec_ms: c.components.exec_ms,
                    startup_ms: c.components.startup_ms,
                    calib_factor: cal.factor(c.dbms.as_str()).unwrap_or(1.0),
                    chosen: picked,
                }
            })
            .collect();
        let chosen_cand = candidates.iter().find(|c| c.chosen);

        // Join the chosen movements against the ledger: one expected edge
        // per input that is not already local to the chosen engine.
        let sides = [
            (&d.left, chosen.left_move, true),
            (&d.right, chosen.right_move, false),
        ];
        let mut edges: Vec<EdgeJoin> = Vec::new();
        // Observed decision cost: predicted compute terms + movement terms
        // re-priced with the observed wire (encoded bytes, actual rows).
        let mut observed_ms = chosen_cand.map_or(0.0, |c| c.exec_ms + c.startup_ms);
        for (side, movement, is_left) in sides {
            if side.dbms == chosen.dbms {
                continue;
            }
            let purpose = movement_purpose(movement);
            let hit = fresh.iter().enumerate().position(|(j, t)| {
                !claimed[j] && t.purpose == purpose && t.from == side.dbms && t.to == chosen.dbms
            });
            let pred_wire_ms = chosen_cand.map_or_else(
                || {
                    cluster.topology.transfer_ms(
                        &side.dbms,
                        &chosen.dbms,
                        side.bytes.max(0.0) as u64,
                        consumer.protocol_overhead,
                    )
                },
                |c| {
                    if is_left {
                        c.wire_left_ms
                    } else {
                        c.wire_right_ms
                    }
                },
            );
            let mut edge = EdgeJoin {
                from: side.dbms.as_str().to_string(),
                to: chosen.dbms.as_str().to_string(),
                movement: movement_label(movement).to_string(),
                engine: chosen.dbms.as_str().to_string(),
                codec: "none".to_string(),
                pred_rows: side.rows.max(0.0) as u64,
                pred_bytes: side.bytes.max(0.0) as u64,
                pred_wire_ms,
                ..Default::default()
            };
            match hit {
                Some(j) => {
                    claimed[j] = true;
                    let t = &fresh[j];
                    edge.obs_rows = t.rows;
                    edge.obs_bytes = t.bytes;
                    edge.obs_encoded_bytes = t.encoded_bytes;
                    // Same Eq. 2–3 arithmetic as the prediction, fed the
                    // observed encoded bytes and row count.
                    let (obs_wire, obs_move) = movement_cost_split(
                        &cluster.topology,
                        &side.dbms,
                        &chosen.dbms,
                        &consumer,
                        profile(&side.dbms).startup_ms,
                        t.rows as f64,
                        t.encoded_bytes as f64,
                        movement,
                    );
                    edge.obs_wire_ms = obs_wire;
                    edge.codec = dominant_codec(t);
                    edge.matched = true;
                    observed_ms += obs_move;
                    obs.pred_transfer_ms += edge.pred_wire_ms;
                    obs.obs_transfer_ms += obs_wire;
                }
                None => {
                    // Edge collapsed (e.g. folded away): keep the model's
                    // own movement term so observed stays comparable.
                    observed_ms += chosen_cand.map_or(0.0, |c| {
                        if is_left {
                            c.move_left_ms
                        } else {
                            c.move_right_ms
                        }
                    });
                }
            }
            edges.push(edge);
        }

        let consult_ms = d.paid_consults as f64 * params::CONSULT_ROUNDTRIP_MS;
        let predicted_ms = chosen_cand.map_or(0.0, |c| c.predicted_ms);
        let regret_ms = match best_rejected {
            Some(b) if chosen_cand.is_some() => observed_ms - b,
            _ => 0.0,
        };
        obs.pred_compute_ms +=
            chosen_cand.map_or(0.0, |c| (c.exec_ms + c.startup_ms) * c.calib_factor);
        obs.consult_ms += consult_ms;
        obs.decisions.push(DecisionObs {
            index: i as u64,
            dbms: chosen.dbms.as_str().to_string(),
            consult_ms,
            predicted_ms,
            observed_ms,
            best_rejected_ms: best_rejected.unwrap_or(0.0),
            regret_ms,
            candidates,
            edges,
        });
    }
    obs.obs_compute_ms = statements.iter().map(|(_, ms)| ms).sum();
    obs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Xdb;
    use crate::global::GlobalCatalog;
    use crate::scenario::{self, ScenarioConfig};

    fn setup() -> (Cluster, GlobalCatalog) {
        scenario::build(ScenarioConfig::default()).unwrap()
    }

    #[test]
    fn observation_joins_decisions_to_ledger_edges() {
        let (cluster, catalog) = setup();
        let xdb = Xdb::new(&cluster, &catalog);
        let out = xdb.submit(scenario::EXAMPLE_QUERY).unwrap();
        let cost = &out.cost;
        assert!(
            !cost.is_empty(),
            "example query has cross-database decisions"
        );
        for d in &cost.decisions {
            // Exactly one candidate carries the chosen flag, and its
            // predicted total is the component sum, bit-exact.
            let chosen: Vec<_> = d.candidates.iter().filter(|c| c.chosen).collect();
            assert_eq!(chosen.len(), 1, "decision {}", d.index);
            let c = chosen[0];
            assert_eq!(
                c.predicted_ms,
                c.exec_ms + c.move_left_ms + c.move_right_ms + c.startup_ms
            );
            assert_eq!(d.predicted_ms, c.predicted_ms);
            for e in &d.edges {
                assert!(e.matched, "edge {}->{} unmatched", e.from, e.to);
                assert!(e.obs_encoded_bytes > 0);
                assert!(e.obs_encoded_bytes <= e.obs_bytes);
                assert_ne!(e.codec, "none");
                // Encoded bytes cost less wire time than the raw estimate
                // unless the estimator underestimated badly.
                assert!(e.obs_wire_ms > 0.0);
            }
            // A rejected candidate exists (two inputs, two movements), so
            // regret is live.
            assert!(d.best_rejected_ms > 0.0);
            assert_eq!(d.regret_ms, d.observed_ms - d.best_rejected_ms);
        }
        assert!(cost.obs_compute_ms > 0.0);
        assert!(cost.pred_compute_ms > 0.0);
        assert!(cost.pred_transfer_ms > 0.0);
        assert!(cost.obs_transfer_ms > 0.0);
    }

    #[test]
    fn consult_totals_equal_ann_phase_exactly() {
        let (cluster, catalog) = setup();
        let xdb = Xdb::new(&cluster, &catalog);
        let out = xdb.submit(scenario::EXAMPLE_QUERY).unwrap();
        let total: f64 = out.cost.decisions.iter().map(|d| d.consult_ms).sum();
        assert_eq!(total, out.cost.consult_ms);
        assert_eq!(total, out.breakdown.ann_ms);
    }

    #[test]
    fn empty_decisions_yield_empty_observation() {
        let (cluster, _) = setup();
        let obs = build_cost_observation(&cluster, &[], &[], &[("cdb".to_string(), 5.0)]);
        assert!(obs.is_empty());
        assert_eq!(obs.obs_compute_ms, 0.0);
    }
}
