//! The paper's motivating scenario (Section II-A, Table I): the Municipal
//! Office of Credo with three departmental DBMSes —
//!
//! - `cdb`: the citizens' department (`citizen`);
//! - `vdb`: the vaccination center (`vaccines`, `vaccination`);
//! - `hdb`: the health department (`measurements`).
//!
//! Data is generated deterministically (tiny embedded xorshift PRNG, no
//! external dependency) so tests and examples are reproducible.

use crate::global::GlobalCatalog;
use xdb_engine::cluster::Cluster;
use xdb_engine::error::Result;
use xdb_engine::profile::EngineProfile;
use xdb_engine::relation::Relation;
use xdb_sql::value::{date, DataType, Value};

/// The example cross-database query of Figure 3: antibody levels per
/// vaccine type and age group, for citizens over 20.
pub const EXAMPLE_QUERY: &str = "SELECT v.vtype, avg(m.u_ml) AS avg_u_ml, \
 case when c.age between 20 and 30 then '20-30' \
      when c.age between 30 and 40 then '30-40' \
      when c.age between 40 and 60 then '40-60' \
      else '60+' end AS age_group \
 FROM citizen c, vaccines v, vaccination vn, measurements m \
 WHERE c.id = vn.c_id AND c.id = m.c_id AND v.id = vn.v_id AND c.age > 20 \
 GROUP BY age_group, v.vtype \
 ORDER BY age_group, v.vtype";

/// Scenario sizing.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    pub citizens: usize,
    /// Number of vaccines currently registered in VDB.
    pub vaccines: usize,
    /// Vaccination events. Their `v_id` ranges over `2 × vaccines`
    /// historical vaccine ids (retired vaccines no longer in the
    /// `vaccines` table) — which is also what makes the VDB-local join
    /// reducing, as in the paper's Figure 6a plan.
    pub vaccination_events: usize,
    pub measurements: usize,
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            citizens: 1000,
            vaccines: 4,
            vaccination_events: 2000,
            measurements: 5000,
            seed: 42,
        }
    }
}

/// Minimal deterministic PRNG (xorshift64*), so `xdb-core` needs no rand
/// dependency.
pub struct Xorshift(u64);

impl Xorshift {
    pub fn new(seed: u64) -> Xorshift {
        Xorshift(seed.max(1))
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform integer in `[lo, hi]`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(hi >= lo);
        lo + (self.next_u64() % (hi - lo + 1) as u64) as i64
    }

    pub fn float(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

const VTYPES: &[&str] = &["mRNA", "vector", "protein", "inactivated"];
const FIRST_NAMES: &[&str] = &[
    "ada", "bo", "cy", "dee", "eli", "fay", "gus", "hana", "ivo", "june",
];

/// Build the three-DBMS federation, load the scenario data, and discover +
/// consult the global catalog.
pub fn build(config: ScenarioConfig) -> Result<(Cluster, GlobalCatalog)> {
    build_with_profiles(
        config,
        EngineProfile::postgres(),
        EngineProfile::postgres(),
        EngineProfile::postgres(),
    )
}

/// Same, with per-department engine profiles (heterogeneity experiments).
pub fn build_with_profiles(
    config: ScenarioConfig,
    cdb: EngineProfile,
    vdb: EngineProfile,
    hdb: EngineProfile,
) -> Result<(Cluster, GlobalCatalog)> {
    let mut cluster = Cluster::new(xdb_net::Topology::lan(&["cdb", "vdb", "hdb"]));
    cluster.add_engine("cdb", cdb);
    cluster.add_engine("vdb", vdb);
    cluster.add_engine("hdb", hdb);
    load(&cluster, config)?;
    let catalog = GlobalCatalog::discover(&cluster)?;
    for t in catalog.table_names() {
        catalog.consult(&cluster, &t)?;
    }
    Ok((cluster, catalog))
}

/// Load scenario tables into an existing cluster with nodes `cdb`, `vdb`,
/// `hdb`.
pub fn load(cluster: &Cluster, config: ScenarioConfig) -> Result<()> {
    let mut rng = Xorshift::new(config.seed);

    // citizen(id, name, age, address) on CDB.
    let mut rows = Vec::with_capacity(config.citizens);
    for id in 1..=config.citizens as i64 {
        let name = format!(
            "{} {}",
            FIRST_NAMES[(rng.next_u64() % FIRST_NAMES.len() as u64) as usize],
            id
        );
        rows.push(vec![
            Value::Int(id),
            Value::str(name),
            Value::Int(rng.range(15, 90)),
            Value::str(format!("{} credo street", rng.range(1, 400))),
        ]);
    }
    cluster.engine("cdb")?.load_table(
        "citizen",
        Relation::new(
            vec![
                ("id".into(), DataType::Int),
                ("name".into(), DataType::Str),
                ("age".into(), DataType::Int),
                ("address".into(), DataType::Str),
            ],
            rows,
        ),
    )?;

    // vaccines(id, name, vtype, manufacturer) on VDB.
    let mut rows = Vec::with_capacity(config.vaccines);
    for id in 1..=config.vaccines as i64 {
        rows.push(vec![
            Value::Int(id),
            Value::str(format!("vax-{id}")),
            Value::str(VTYPES[(id as usize - 1) % VTYPES.len()]),
            Value::str(format!("maker-{}", (id - 1) % 3 + 1)),
        ]);
    }
    cluster.engine("vdb")?.load_table(
        "vaccines",
        Relation::new(
            vec![
                ("id".into(), DataType::Int),
                ("name".into(), DataType::Str),
                ("vtype".into(), DataType::Str),
                ("manufacturer".into(), DataType::Str),
            ],
            rows,
        ),
    )?;

    // vaccination(c_id, v_id, vdate) on VDB. v_id spans retired vaccine
    // ids too (2 × the registered count).
    let base = date::days_from_ymd(2021, 1, 1);
    let mut rows = Vec::with_capacity(config.vaccination_events);
    for _ in 0..config.vaccination_events {
        rows.push(vec![
            Value::Int(rng.range(1, config.citizens as i64)),
            Value::Int(rng.range(1, (config.vaccines * 2) as i64)),
            Value::Date(base + rng.range(0, 330) as i32),
        ]);
    }
    cluster.engine("vdb")?.load_table(
        "vaccination",
        Relation::new(
            vec![
                ("c_id".into(), DataType::Int),
                ("v_id".into(), DataType::Int),
                ("vdate".into(), DataType::Date),
            ],
            rows,
        ),
    )?;

    // measurements(id, c_id, mdate, u_ml) on HDB.
    let mut rows = Vec::with_capacity(config.measurements);
    for id in 1..=config.measurements as i64 {
        rows.push(vec![
            Value::Int(id),
            Value::Int(rng.range(1, config.citizens as i64)),
            Value::Date(base + rng.range(120, 360) as i32),
            Value::Float((rng.float() * 250.0 * 10.0).round() / 10.0),
        ]);
    }
    cluster.engine("hdb")?.load_table(
        "measurements",
        Relation::new(
            vec![
                ("id".into(), DataType::Int),
                ("c_id".into(), DataType::Int),
                ("mdate".into(), DataType::Date),
                ("u_ml".into(), DataType::Float),
            ],
            rows,
        ),
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdb_sql::stats::StatsProvider;

    #[test]
    fn builds_and_discovers() {
        let (cluster, catalog) = build(ScenarioConfig::default()).unwrap();
        assert_eq!(
            catalog.table_names(),
            vec!["citizen", "measurements", "vaccination", "vaccines"]
        );
        assert_eq!(catalog.table_rows("citizen"), Some(1000.0));
        assert_eq!(catalog.table_rows("vaccination"), Some(2000.0));
        // vaccination references retired vaccine ids: more distinct v_ids
        // than registered vaccines.
        let v_id = catalog.column_stats("vaccination", "v_id").unwrap();
        assert!(v_id.n_distinct > 4.0);
        let (rel, _) = cluster
            .query("cdb", "SELECT count(*) AS n FROM citizen WHERE age > 20")
            .unwrap();
        match rel.value(0, 0) {
            Value::Int(n) => assert!(n > 800, "{n}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn deterministic_across_builds() {
        let (c1, _) = build(ScenarioConfig::default()).unwrap();
        let (c2, _) = build(ScenarioConfig::default()).unwrap();
        let (r1, _) = c1
            .query("hdb", "SELECT sum(u_ml) AS s FROM measurements")
            .unwrap();
        let (r2, _) = c2
            .query("hdb", "SELECT sum(u_ml) AS s FROM measurements")
            .unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn xorshift_is_uniformish() {
        let mut rng = Xorshift::new(7);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.range(0, 9) as usize] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "{counts:?}");
        }
    }
}
