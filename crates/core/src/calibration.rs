//! Cost-unit calibration across heterogeneous engines (footnote 6 of the
//! paper, after refs 45–47).
//!
//! EXPLAIN cost estimates from different vendors are expressed in
//! vendor-specific units (PostgreSQL page fetches, MariaDB cost units,
//! Hive's planner numbers). Before the annotation cost model can compare
//! `cost(o, a)` across candidate DBMSes, XDB probes every engine with the
//! same synthetic workload and derives a per-engine scale factor to a
//! common unit — the *query sampling* approach of Zhu & Larson.

use std::collections::HashMap;
use xdb_engine::cluster::Cluster;
use xdb_engine::error::Result;
use xdb_sql::value::{DataType, Value};

/// Rows in the synthetic calibration table.
const PROBE_ROWS: usize = 1000;

/// Per-node multiplicative factors aligning EXPLAIN costs to the
/// reference unit (the first node probed is the reference).
#[derive(Debug, Clone, Default)]
pub struct Calibration {
    factors: HashMap<String, f64>,
    reference: Option<String>,
}

impl Calibration {
    /// Probe every engine in the cluster: create a temporary table with
    /// identical content everywhere, `EXPLAIN` an identical scan+filter
    /// query, and compare the reported costs.
    pub fn probe(cluster: &Cluster) -> Result<Calibration> {
        let mut factors = HashMap::new();
        let mut reference: Option<(String, f64)> = None;
        for node in cluster.node_names() {
            let engine = cluster.engine(&node)?;
            let probe_table = format!("xdb_calib_{node}");
            let rel = xdb_engine::relation::Relation::new(
                vec![
                    ("k".to_string(), DataType::Int),
                    ("v".to_string(), DataType::Float),
                ],
                (0..PROBE_ROWS)
                    .map(|i| vec![Value::Int(i as i64), Value::Float(i as f64 * 0.5)])
                    .collect(),
            );
            engine.load_table(&probe_table, rel)?;
            let stmt =
                xdb_sql::parse_select(&format!("SELECT k FROM {probe_table} WHERE v > 100"))?;
            let info = engine.explain_select(&stmt)?;
            engine.execute_sql(&format!("DROP TABLE {probe_table}"), &xdb_engine::NoRemote)?;
            let cost = info.est_cost.max(1e-9);
            match &reference {
                None => {
                    factors.insert(node.clone(), 1.0);
                    reference = Some((node.clone(), cost));
                }
                Some((_, ref_cost)) => {
                    factors.insert(node.clone(), ref_cost / cost);
                }
            }
        }
        Ok(Calibration {
            factors,
            reference: reference.map(|(n, _)| n),
        })
    }

    /// Derive the same per-engine factors as [`Calibration::probe`]
    /// without touching any catalog. The probe ships one identical plan
    /// to every engine, so each EXPLAIN reports `C × cpu_tuple_cost_ms ×
    /// olap_factor` with the same plan-shape constant `C` — the factor
    /// reduces to the profile-unit ratio. Side-effect-free, so the
    /// cost-model observatory can scale compute costs mid-query (a real
    /// probe would create/drop tables, bumping DDL generations and
    /// invalidating consult caches — visibly perturbing the run).
    pub fn analytic(cluster: &Cluster) -> Calibration {
        let mut factors = HashMap::new();
        let mut reference: Option<(String, f64)> = None;
        for node in cluster.node_names() {
            let Ok(engine) = cluster.engine(&node) else {
                continue;
            };
            let unit = (engine.profile.cpu_tuple_cost_ms * engine.profile.olap_factor).max(1e-12);
            match &reference {
                None => {
                    factors.insert(node.clone(), 1.0);
                    reference = Some((node.clone(), unit));
                }
                Some((_, ref_unit)) => {
                    factors.insert(node.clone(), ref_unit / unit);
                }
            }
        }
        Calibration {
            factors,
            reference: reference.map(|(n, _)| n),
        }
    }

    /// Convert a cost reported by `node` into reference units.
    pub fn to_reference(&self, node: &str, cost: f64) -> f64 {
        cost * self.factors.get(node).copied().unwrap_or(1.0)
    }

    pub fn factor(&self, node: &str) -> Option<f64> {
        self.factors.get(node).copied()
    }

    pub fn reference_node(&self) -> Option<&str> {
        self.reference.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdb_engine::profile::EngineProfile;
    use xdb_net::Topology;

    #[test]
    fn homogeneous_cluster_calibrates_to_unity() {
        let cluster = Cluster::lan(&["a", "b"], EngineProfile::postgres());
        let cal = Calibration::probe(&cluster).unwrap();
        assert_eq!(cal.factor("a"), Some(1.0));
        let fb = cal.factor("b").unwrap();
        assert!((fb - 1.0).abs() < 1e-9, "{fb}");
    }

    #[test]
    fn heterogeneous_cluster_gets_nontrivial_factors() {
        let mut cluster = Cluster::new(Topology::lan(&[]));
        cluster.add_engine("pg", EngineProfile::postgres());
        cluster.add_engine("maria", EngineProfile::mariadb());
        let cal = Calibration::probe(&cluster).unwrap();
        let f = cal.factor("pg").unwrap();
        // MariaDB reports higher vendor costs for the same probe, so its
        // factor to the reference unit is below the reference's.
        let fm = cal.factor("maria").unwrap();
        assert!(fm < f, "maria {fm} vs pg {f}");
        // Calibrated costs agree on the identical probe workload.
        let pg_cost = 100.0;
        let maria_cost = pg_cost * (f / fm);
        let a = cal.to_reference("pg", pg_cost);
        let b = cal.to_reference("maria", maria_cost);
        assert!((a - b).abs() / a < 1e-6);
    }

    #[test]
    fn analytic_matches_probe_factors() {
        // The observatory's side-effect-free derivation must agree with
        // the real probe on both homogeneous and heterogeneous clusters.
        let mut cluster = Cluster::new(Topology::lan(&[]));
        cluster.add_engine("pg", EngineProfile::postgres());
        cluster.add_engine("maria", EngineProfile::mariadb());
        cluster.add_engine("hive", EngineProfile::hive());
        let probed = Calibration::probe(&cluster).unwrap();
        let analytic = Calibration::analytic(&cluster);
        assert_eq!(probed.reference_node(), analytic.reference_node());
        for node in ["pg", "maria", "hive"] {
            let p = probed.factor(node).unwrap();
            let a = analytic.factor(node).unwrap();
            assert!((p - a).abs() / p < 1e-9, "{node}: probe {p} analytic {a}");
        }
    }

    #[test]
    fn unknown_node_passes_through() {
        let cal = Calibration::default();
        assert_eq!(cal.to_reference("ghost", 5.0), 5.0);
        assert_eq!(cal.factor("ghost"), None);
        assert_eq!(cal.reference_node(), None);
    }

    #[test]
    fn probe_cleans_up_after_itself() {
        let cluster = Cluster::lan(&["a"], EngineProfile::postgres());
        Calibration::probe(&cluster).unwrap();
        let names = cluster.engine("a").unwrap().with_catalog(|c| c.names());
        assert!(names.is_empty(), "{names:?}");
    }
}
