//! Consultation cache: memoized consulting round-trips (Section IV-B2).
//!
//! Consulting an autonomous DBMS — a metadata probe during preparation or
//! an EXPLAIN-style probe while costing candidate placements — is a
//! network round-trip ([`xdb_net::params::CONSULT_ROUNDTRIP_MS`]). The
//! answers only change when that DBMS's catalog changes, so the middleware
//! caches them keyed by `(node, canonical rendered sub-query)` and
//! validates every entry against the node's DDL generation: *any* DDL
//! executed against a node invalidates every probe cached for it.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use xdb_engine::profile::EngineProfile;
use xdb_net::NodeId;

/// What a cached consultation round-trip carried back.
#[derive(Debug, Clone)]
pub enum ConsultReply {
    /// Metadata/statistics probe (schema validation + optimizer stats).
    Stats,
    /// EXPLAIN-style probe of a candidate sub-query placement: the
    /// engine's execution profile as observed at probe time.
    Explain(EngineProfile),
}

/// Thread-safe consultation cache with hit/miss accounting.
#[derive(Debug, Default)]
pub struct ConsultCache {
    entries: Mutex<HashMap<(NodeId, String), (u64, ConsultReply)>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ConsultCache {
    pub fn new() -> ConsultCache {
        ConsultCache::default()
    }

    /// Look up a probe against `node`. A hit requires the stored entry to
    /// carry the node's *current* DDL generation; a stale entry counts as
    /// a miss (and will be overwritten by the following [`store`]).
    ///
    /// [`store`]: ConsultCache::store
    pub fn lookup(&self, node: &NodeId, probe: &str, generation: u64) -> Option<ConsultReply> {
        let entries = self.entries.lock();
        match entries.get(&(node.clone(), probe.to_string())) {
            Some((stored, reply)) if *stored == generation => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(reply.clone())
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Record the answer of a consultation performed at `generation`.
    pub fn store(&self, node: &NodeId, probe: &str, generation: u64, reply: ConsultReply) {
        self.entries
            .lock()
            .insert((node.clone(), probe.to_string()), (generation, reply));
    }

    /// Whether a *valid* entry exists, without touching the counters.
    pub fn contains(&self, node: &NodeId, probe: &str, generation: u64) -> bool {
        matches!(
            self.entries.lock().get(&(node.clone(), probe.to_string())),
            Some((stored, _)) if *stored == generation
        )
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    pub fn clear(&self) {
        self.entries.lock().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_requires_matching_generation() {
        let cache = ConsultCache::new();
        let node = NodeId::new("db1");
        assert!(cache.lookup(&node, "SELECT 1", 0).is_none());
        cache.store(&node, "SELECT 1", 0, ConsultReply::Stats);
        assert!(cache.lookup(&node, "SELECT 1", 0).is_some());
        // A DDL bumped the node's generation: the entry is stale.
        assert!(cache.lookup(&node, "SELECT 1", 1).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn entries_are_per_node_and_per_probe() {
        let cache = ConsultCache::new();
        cache.store(&NodeId::new("db1"), "q", 0, ConsultReply::Stats);
        assert!(cache.lookup(&NodeId::new("db2"), "q", 0).is_none());
        assert!(cache.lookup(&NodeId::new("db1"), "other", 0).is_none());
        assert!(cache.lookup(&NodeId::new("db1"), "q", 0).is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_resets_counters() {
        let cache = ConsultCache::new();
        cache.store(&NodeId::new("db1"), "q", 0, ConsultReply::Stats);
        cache.lookup(&NodeId::new("db1"), "q", 0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 0);
    }
}
