//! Workspace-local stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the slice of the criterion API the bench targets use: `Criterion`,
//! `benchmark_group` with `sample_size`/`warm_up_time`/`measurement_time`/
//! `bench_function`/`finish`, a `Bencher` with `iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Semantics kept compatible with real criterion where it matters:
//! * `cargo test` passes `--test` to harness-less bench binaries; in that
//!   mode every benchmark body runs exactly once with no measurement, so
//!   the tier-1 suite stays fast.
//! * In bench mode each benchmark is warmed up, then timed over
//!   `sample_size` samples; min/median/max are reported.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            test_mode: self.test_mode,
            sample_size: 100,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(3),
            _marker: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = BenchmarkGroup {
            name: String::new(),
            test_mode: self.test_mode,
            sample_size: 100,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(3),
            _marker: std::marker::PhantomData,
        };
        g.bench_function(id, &mut f);
        self
    }

    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    test_mode: bool,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        if self.test_mode {
            // `cargo test` smoke run: execute once, no timing.
            let mut b = Bencher {
                mode: Mode::Once,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("test {label} ... ok");
            return self;
        }

        // Warm-up: also discovers how many iterations fit in a sample.
        let mut iters_per_sample = 1u64;
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut warm_iters = 0u64;
        let warm_start = Instant::now();
        loop {
            let mut b = Bencher {
                mode: Mode::Measure { iters: 1 },
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            warm_iters += 1;
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        if per_iter > 0.0 {
            let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
            iters_per_sample = ((budget / per_iter) as u64).clamp(1, 1_000_000);
        }

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                mode: Mode::Measure {
                    iters: iters_per_sample,
                },
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples.first().copied().unwrap_or(0.0);
        let med = samples[samples.len() / 2];
        let max = samples.last().copied().unwrap_or(0.0);
        println!(
            "{label:<40} time:   [{} {} {}]",
            fmt_time(min),
            fmt_time(med),
            fmt_time(max)
        );
        self
    }

    pub fn finish(self) {}
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

enum Mode {
    /// `--test` smoke run: body executes once, nothing is timed.
    Once,
    /// Timed run: body executes `iters` times under the clock.
    Measure { iters: u64 },
}

/// Passed to each benchmark body; times the closure given to `iter`.
pub struct Bencher {
    mode: Mode,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        match self.mode {
            Mode::Once => {
                std::hint::black_box(f());
            }
            Mode::Measure { iters } => {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                self.elapsed += start.elapsed();
            }
        }
    }
}

/// Prevent the optimizer from eliding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_body() {
        let mut c = Criterion { test_mode: true };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(2));
            g.bench_function("f", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert_eq!(ran, 1);
    }

    #[test]
    fn measure_mode_times_samples() {
        let mut c = Criterion { test_mode: false };
        let mut g = c.benchmark_group("g");
        g.sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut n = 0u64;
        g.bench_function("f", |b| b.iter(|| n += 1));
        g.finish();
        assert!(n > 2);
    }
}
