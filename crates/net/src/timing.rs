//! Deterministic timing composition over task DAGs.
//!
//! Executions in this repository are *real* (operators run over real
//! tuples); elapsed wall-clock is *simulated* from the measured work so
//! that experiments are deterministic and laptop-scale. This module owns
//! the composition rules:
//!
//! - **explicit** (materialized) in-edges serialize: the consumer starts
//!   only after the producer finished, the data moved, and the local copy
//!   was written;
//! - **implicit** (pipelined) in-edges overlap: producer, transfer, and
//!   consumer run concurrently, so the chain costs roughly the *max* of the
//!   stages rather than their sum — this is the property that makes XDB's
//!   inter-DBMS pipelines beat mediator round-trips (Fig 8, Fig 9).

use crate::params::PIPELINE_DRAIN_MS;

/// Movement type of a dataflow edge in a delegation plan (Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Movement {
    /// `t1 --i--> t2`: pipelined via a foreign-table scan.
    Implicit,
    /// `t1 --e--> t2`: materialized on the consumer before it runs.
    Explicit,
}

impl Movement {
    /// Canonical lowercase label (`implicit` / `explicit`) — the spelling
    /// used by history records, the cost-model observatory, and learned
    /// cost-profile keys.
    pub fn label(self) -> &'static str {
        match self {
            Movement::Implicit => "implicit",
            Movement::Explicit => "explicit",
        }
    }
}

impl std::fmt::Display for Movement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Movement::Implicit => "i",
            Movement::Explicit => "e",
        })
    }
}

/// Canonical `from->to/movement` edge-shape key: the aggregation key
/// shared by the observatory's per-shape error tables and the learned
/// cost-profile store, so observed ratios land exactly where candidate
/// costing looks them up.
pub fn edge_shape(from: &str, to: &str, movement: Movement) -> String {
    format!("{from}->{to}/{}", movement.label())
}

/// The movement-agnostic `from->to` link key (fallback granularity of the
/// learned profile store).
pub fn edge_pair(from: &str, to: &str) -> String {
    format!("{from}->{to}")
}

/// Timing contribution of one in-edge of a task.
#[derive(Debug, Clone, Copy)]
pub struct EdgeTiming {
    /// When the producing task finishes (simulated ms since query start).
    pub producer_finish_ms: f64,
    /// Wire time for the edge's data.
    pub transfer_ms: f64,
    /// Cost of writing the materialized copy (explicit edges only).
    pub import_ms: f64,
    pub movement: Movement,
}

/// Compute the finish time of a task given its own startup/work and the
/// timing of its in-edges.
///
/// Model:
/// - `ready` = max over *explicit* edges of `producer_finish + transfer +
///   import` (all must be materialized before the local query can run);
/// - the task's own work `W` starts at `ready`;
/// - each *implicit* edge constrains completion to
///   `max(producer_finish + drain, ready + transfer)` — the consumer cannot
///   finish before its slowest pipelined producer, nor before the data
///   could physically cross the wire.
pub fn compose_finish(startup_ms: f64, work_ms: f64, edges: &[EdgeTiming]) -> f64 {
    let mut ready = 0.0f64;
    for e in edges {
        if e.movement == Movement::Explicit {
            ready = ready.max(e.producer_finish_ms + e.transfer_ms + e.import_ms);
        }
    }
    let mut finish = ready + work_ms;
    for e in edges {
        if e.movement == Movement::Implicit {
            let pipeline_bound =
                (e.producer_finish_ms + PIPELINE_DRAIN_MS).max(ready + e.transfer_ms);
            finish = finish.max(pipeline_bound.max(ready + work_ms));
        }
    }
    startup_ms + finish
}

/// Timing of a mediator-style execution: all fragment results are fetched
/// (in parallel) into the mediator, then the mediator runs the residual
/// plan.
///
/// - `fetches`: per-fragment `(producer_finish, transfer)` pairs — fetching
///   overlaps across fragments but each fetch only starts once its fragment
///   finished;
/// - `mediator_work_ms`: residual cross-database work at the mediator,
///   already divided by worker parallelism where applicable;
/// - returns the query finish time.
pub fn mediator_finish(
    mediator_startup_ms: f64,
    mediator_work_ms: f64,
    fetches: &[(f64, f64)],
) -> f64 {
    let data_ready = fetches
        .iter()
        .map(|(finish, xfer)| finish + xfer)
        .fold(0.0f64, f64::max);
    mediator_startup_ms + data_ready + mediator_work_ms
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn no_edges_is_startup_plus_work() {
        assert!((compose_finish(5.0, 100.0, &[]) - 105.0).abs() < EPS);
    }

    #[test]
    fn explicit_edges_serialize() {
        let edges = [EdgeTiming {
            producer_finish_ms: 100.0,
            transfer_ms: 50.0,
            import_ms: 10.0,
            movement: Movement::Explicit,
        }];
        // 100 + 50 + 10 = 160 ready, + 40 work + 0 startup.
        assert!((compose_finish(0.0, 40.0, &edges) - 200.0).abs() < EPS);
    }

    #[test]
    fn implicit_edges_overlap() {
        let edges = [EdgeTiming {
            producer_finish_ms: 100.0,
            transfer_ms: 50.0,
            import_ms: 0.0,
            movement: Movement::Implicit,
        }];
        // Pipelined: finish = max(0 + 40, max(100 + drain, 0 + 50)) = 101.
        let f = compose_finish(0.0, 40.0, &edges);
        assert!((f - (100.0 + PIPELINE_DRAIN_MS)).abs() < EPS, "{f}");
        // A pipelined chain is cheaper than the serialized version.
        let serialized = compose_finish(
            0.0,
            40.0,
            &[EdgeTiming {
                movement: Movement::Explicit,
                ..edges[0]
            }],
        );
        assert!(f < serialized);
    }

    #[test]
    fn implicit_bounded_by_transfer_when_slow_link() {
        let edges = [EdgeTiming {
            producer_finish_ms: 10.0,
            transfer_ms: 500.0,
            import_ms: 0.0,
            movement: Movement::Implicit,
        }];
        // Wire dominates: finish ≈ 500.
        let f = compose_finish(0.0, 20.0, &edges);
        assert!((f - 500.0).abs() < EPS, "{f}");
    }

    #[test]
    fn mixed_edges_compose() {
        let edges = [
            EdgeTiming {
                producer_finish_ms: 100.0,
                transfer_ms: 10.0,
                import_ms: 5.0,
                movement: Movement::Explicit,
            },
            EdgeTiming {
                producer_finish_ms: 30.0,
                transfer_ms: 10.0,
                import_ms: 0.0,
                movement: Movement::Implicit,
            },
        ];
        // ready = 115; work starts then: 115 + 50 = 165; implicit producer
        // long done, wire bound 125 < 165.
        let f = compose_finish(0.0, 50.0, &edges);
        assert!((f - 165.0).abs() < EPS, "{f}");
    }

    #[test]
    fn slow_pipelined_producer_dominates() {
        let edges = [
            EdgeTiming {
                producer_finish_ms: 1000.0,
                transfer_ms: 5.0,
                import_ms: 0.0,
                movement: Movement::Implicit,
            },
            EdgeTiming {
                producer_finish_ms: 50.0,
                transfer_ms: 5.0,
                import_ms: 5.0,
                movement: Movement::Explicit,
            },
        ];
        let f = compose_finish(0.0, 10.0, &edges);
        assert!((f - (1000.0 + PIPELINE_DRAIN_MS)).abs() < EPS, "{f}");
    }

    #[test]
    fn startup_added_last() {
        let f = compose_finish(7.0, 3.0, &[]);
        assert!((f - 10.0).abs() < EPS);
    }

    #[test]
    fn mediator_fetches_overlap_but_work_serializes() {
        let fetches = [(100.0, 50.0), (120.0, 10.0), (10.0, 200.0)];
        // data ready at max(150, 130, 210) = 210; + 100 work + 5 startup.
        let f = mediator_finish(5.0, 100.0, &fetches);
        assert!((f - 315.0).abs() < EPS, "{f}");
    }

    #[test]
    fn mediator_no_fragments() {
        let f = mediator_finish(5.0, 100.0, &[]);
        assert!((f - 105.0).abs() < EPS);
    }

    #[test]
    fn monotone_in_producer_time() {
        // Sanity: pushing a producer later never makes the consumer finish
        // earlier, for either movement type.
        for movement in [Movement::Implicit, Movement::Explicit] {
            let mk = |p: f64| {
                compose_finish(
                    1.0,
                    10.0,
                    &[EdgeTiming {
                        producer_finish_ms: p,
                        transfer_ms: 5.0,
                        import_ms: 2.0,
                        movement,
                    }],
                )
            };
            let mut last = 0.0;
            for p in [0.0, 10.0, 100.0, 1000.0] {
                let f = mk(p);
                assert!(f >= last, "{movement:?} {p} {f} < {last}");
                last = f;
            }
        }
    }
}
