//! # xdb-net
//!
//! Simulated network substrate for the XDB federation:
//!
//! - [`topology`]: nodes + links with bandwidth/latency, covering the
//!   paper's three deployment scenarios (LAN cluster, geo-distributed
//!   DBMSes, managed-cloud middleware);
//! - [`ledger`]: byte-exact transfer accounting (the "Docker network
//!   statistics" equivalent used in the evaluation);
//! - [`timing`]: deterministic composition of simulated elapsed times over
//!   task DAGs, distinguishing pipelined (implicit) from materialized
//!   (explicit) dataflow;
//! - [`params`]: every simulation constant, documented against the paper
//!   observation it models;
//! - [`reactor`]: the morsel-driven edge reactor — bounded per-edge chunk
//!   channels plus a worker pool so decode and consumer compute for
//!   different chunks of one edge overlap on the wall clock.

pub mod ledger;
pub mod params;
pub mod reactor;
pub mod timing;
pub mod topology;
pub mod wire;

pub use ledger::{Ledger, Purpose, Transfer};
pub use reactor::{EdgeChannel, PoisonGuard, Poisoned};
pub use timing::{compose_finish, edge_pair, edge_shape, mediator_finish, EdgeTiming, Movement};
pub use topology::{Link, NodeId, Scenario, Topology};
pub use wire::{Codec, Encoded, StreamDecoder, WireStats};
