//! Transfer ledger: the simulated equivalent of the paper's "Docker network
//! statistics" (Section VI-A Methodology).
//!
//! Every byte that crosses a link during query execution is recorded here,
//! tagged with *why* it moved, so the data-transfer experiments (Fig 1's red
//! bars, Fig 14) read directly off the ledger.

use crate::topology::NodeId;
use parking_lot::Mutex;
use std::sync::Arc;
use xdb_obs::Telemetry;

/// Why a transfer happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Purpose {
    /// A mediator fetching a sub-query result from a DBMS (the MW approach).
    SubqueryResult,
    /// Inter-DBMS pipeline traffic between two underlying DBMSes (XDB's
    /// in-situ execution).
    InterDbmsPipeline,
    /// Explicit materialization of an intermediate relation.
    Materialization,
    /// Final query result returned to the client.
    FinalResult,
    /// Optimizer/delegation control messages (EXPLAIN probes, DDLs).
    ControlMessage,
    /// Data exchange between mediator workers (scaled-out MW systems).
    WorkerExchange,
}

/// One recorded transfer.
#[derive(Debug, Clone)]
pub struct Transfer {
    pub from: NodeId,
    pub to: NodeId,
    /// Raw (uncompressed) payload size — the honest "how much data moved
    /// logically" series that fig-13-style comparisons read.
    pub bytes: u64,
    /// Size after the `net::wire` codec — what the simulated transfer-time
    /// model charges. Equal to `bytes` for uncompressed traffic (control
    /// messages).
    pub encoded_bytes: u64,
    pub rows: u64,
    pub purpose: Purpose,
    /// Per-codec byte split of the encoded payload. Deterministic per
    /// edge (the codec is chosen once over the whole relation, chunking
    /// only frames it), so the query history store can persist observed
    /// per-(edge, codec) wire ratios. Empty for uncompressed traffic.
    pub codec_bytes: Vec<(&'static str, u64)>,
}

impl Purpose {
    /// Stable lowercase label, used as the `purpose` metric label.
    pub fn label(self) -> &'static str {
        match self {
            Purpose::SubqueryResult => "subquery_result",
            Purpose::InterDbmsPipeline => "inter_dbms_pipeline",
            Purpose::Materialization => "materialization",
            Purpose::FinalResult => "final_result",
            Purpose::ControlMessage => "control_message",
            Purpose::WorkerExchange => "worker_exchange",
        }
    }
}

/// Thread-safe, shareable transfer ledger.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    inner: Arc<Mutex<Vec<Transfer>>>,
    /// When attached, every kept record bumps the per-purpose
    /// `net.transfers` / `net.bytes` / `net.rows` counters. Counter adds
    /// are commutative, so totals are identical no matter how concurrent
    /// recorders interleave; [`Ledger::absorb`] deliberately does *not*
    /// re-count, so scratch ledgers that already carry the same telemetry
    /// handle contribute exactly once.
    telemetry: Option<Arc<Telemetry>>,
}

impl Ledger {
    pub fn new() -> Ledger {
        Ledger::default()
    }

    /// This ledger with a telemetry handle attached (clones made after
    /// this call share it).
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Ledger {
        self.telemetry = Some(telemetry);
        self
    }

    /// Record an uncompressed transfer (control messages, DDL): encoded
    /// size equals the raw size and it ships as a single chunk.
    pub fn record(&self, from: &NodeId, to: &NodeId, bytes: u64, rows: u64, purpose: Purpose) {
        self.record_wire(
            from,
            to,
            bytes,
            rows,
            purpose,
            &crate::wire::WireStats {
                encoded_bytes: bytes,
                chunks: 1,
                codec_bytes: Vec::new(),
            },
        );
    }

    /// Record a transfer that went through the `net::wire` codec. The raw
    /// `bytes` stay the primary series; `stats` carries the encoded size
    /// the transfer-time model charged, the transport chunk count, and the
    /// per-codec byte split for the `net.codec.bytes` counters.
    pub fn record_wire(
        &self,
        from: &NodeId,
        to: &NodeId,
        bytes: u64,
        rows: u64,
        purpose: Purpose,
        stats: &crate::wire::WireStats,
    ) {
        // Loopback traffic never crosses the network; keep the ledger about
        // actual movement so totals match "data transferred over the wire".
        // Taking the endpoints by reference means callers on this hot path
        // only pay for the clones when a record is actually kept.
        if from == to {
            return;
        }
        if let Some(t) = &self.telemetry {
            let labels = [("purpose", purpose.label())];
            t.metrics.counter_add("net.transfers", &labels, 1.0);
            t.metrics.counter_add("net.bytes", &labels, bytes as f64);
            t.metrics.counter_add("net.rows", &labels, rows as f64);
            t.metrics
                .counter_add("net.encoded_bytes", &labels, stats.encoded_bytes as f64);
            // Chunk counts depend on `stream_chunk_rows`; the series is
            // excluded from `deterministic_snapshot()` (like `sched.*`).
            t.metrics
                .counter_add("net.chunks", &labels, stats.chunks as f64);
            for (codec, cbytes) in &stats.codec_bytes {
                t.metrics
                    .counter_add("net.codec.bytes", &[("codec", codec)], *cbytes as f64);
            }
        }
        self.inner.lock().push(Transfer {
            from: from.clone(),
            to: to.clone(),
            bytes,
            encoded_bytes: stats.encoded_bytes,
            rows,
            purpose,
            codec_bytes: stats.codec_bytes.clone(),
        });
    }

    /// Append every transfer of `other` to this ledger, preserving order.
    ///
    /// Used by the parallel executor: each task group records into a
    /// private scratch ledger, and the groups are absorbed in script order
    /// after the barrier so the merged ledger is bit-identical to a
    /// sequential run.
    pub fn absorb(&self, other: &Ledger) {
        let mut records = other.inner.lock().clone();
        self.inner.lock().append(&mut records);
    }

    /// Total bytes across all recorded transfers.
    pub fn total_bytes(&self) -> u64 {
        self.inner.lock().iter().map(|t| t.bytes).sum()
    }

    /// Total rows across all recorded transfers.
    pub fn total_rows(&self) -> u64 {
        self.inner.lock().iter().map(|t| t.rows).sum()
    }

    /// Total encoded (post-codec) bytes across all recorded transfers.
    pub fn total_encoded_bytes(&self) -> u64 {
        self.inner.lock().iter().map(|t| t.encoded_bytes).sum()
    }

    /// Total encoded (post-codec) bytes for a given purpose.
    pub fn encoded_bytes_for(&self, purpose: Purpose) -> u64 {
        self.inner
            .lock()
            .iter()
            .filter(|t| t.purpose == purpose)
            .map(|t| t.encoded_bytes)
            .sum()
    }

    /// Total bytes for a given purpose.
    pub fn bytes_for(&self, purpose: Purpose) -> u64 {
        self.inner
            .lock()
            .iter()
            .filter(|t| t.purpose == purpose)
            .map(|t| t.bytes)
            .sum()
    }

    /// Total bytes into a specific node (e.g. the cloud mediator, for the
    /// "cloud vendors charge by incoming data" analysis of Fig 14).
    pub fn bytes_into(&self, node: &NodeId) -> u64 {
        self.inner
            .lock()
            .iter()
            .filter(|t| &t.to == node)
            .map(|t| t.bytes)
            .sum()
    }

    /// Total bytes touching (into or out of) a specific node.
    pub fn bytes_touching(&self, node: &NodeId) -> u64 {
        self.inner
            .lock()
            .iter()
            .filter(|t| &t.to == node || &t.from == node)
            .map(|t| t.bytes)
            .sum()
    }

    /// Snapshot of all transfers (for plan analysis like Table IV).
    pub fn snapshot(&self) -> Vec<Transfer> {
        self.inner.lock().clone()
    }

    pub fn clear(&self) {
        self.inner.lock().clear();
    }

    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_totals() {
        let l = Ledger::new();
        l.record(&"a".into(), &"b".into(), 100, 10, Purpose::SubqueryResult);
        l.record(&"b".into(), &"c".into(), 50, 5, Purpose::InterDbmsPipeline);
        assert_eq!(l.total_bytes(), 150);
        assert_eq!(l.total_rows(), 15);
        assert_eq!(l.bytes_for(Purpose::SubqueryResult), 100);
        assert_eq!(l.bytes_into(&"c".into()), 50);
        assert_eq!(l.bytes_touching(&"b".into()), 150);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn loopback_not_recorded() {
        let l = Ledger::new();
        l.record(&"a".into(), &"a".into(), 100, 10, Purpose::Materialization);
        assert!(l.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let l = Ledger::new();
        let l2 = l.clone();
        l2.record(&"a".into(), &"b".into(), 7, 1, Purpose::FinalResult);
        assert_eq!(l.total_bytes(), 7);
        l.clear();
        assert!(l2.is_empty());
    }

    #[test]
    fn telemetry_counts_records_but_not_absorbs() {
        let t = Telemetry::new_handle();
        let l = Ledger::new().with_telemetry(Arc::clone(&t));
        l.record(&"a".into(), &"b".into(), 100, 10, Purpose::Materialization);
        l.record(&"a".into(), &"a".into(), 999, 99, Purpose::Materialization); // loopback
        let labels = [("purpose", "materialization")];
        assert_eq!(t.metrics.value("net.transfers", &labels), 1.0);
        assert_eq!(t.metrics.value("net.bytes", &labels), 100.0);
        // A scratch ledger sharing the handle counts at record time…
        let scratch = Ledger::new().with_telemetry(Arc::clone(&t));
        scratch.record(&"b".into(), &"c".into(), 50, 5, Purpose::Materialization);
        assert_eq!(t.metrics.value("net.bytes", &labels), 150.0);
        // …and absorbing it does not double-count.
        l.absorb(&scratch);
        assert_eq!(t.metrics.value("net.bytes", &labels), 150.0);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn record_wire_tracks_encoded_series() {
        let t = Telemetry::new_handle();
        let l = Ledger::new().with_telemetry(Arc::clone(&t));
        let stats = crate::wire::WireStats {
            encoded_bytes: 40,
            chunks: 3,
            codec_bytes: vec![("dict", 30), ("raw", 10)],
        };
        l.record_wire(
            &"a".into(),
            &"b".into(),
            100,
            10,
            Purpose::InterDbmsPipeline,
            &stats,
        );
        // Plain records keep encoded == raw.
        l.record(&"b".into(), &"c".into(), 8, 0, Purpose::ControlMessage);
        // The per-codec split rides on the record for the history store.
        let snap = l.snapshot();
        assert_eq!(snap[0].codec_bytes, vec![("dict", 30), ("raw", 10)]);
        assert!(snap[1].codec_bytes.is_empty());
        assert_eq!(l.total_bytes(), 108);
        assert_eq!(l.total_encoded_bytes(), 48);
        assert_eq!(l.encoded_bytes_for(Purpose::InterDbmsPipeline), 40);
        assert_eq!(l.encoded_bytes_for(Purpose::ControlMessage), 8);
        let labels = [("purpose", "inter_dbms_pipeline")];
        assert_eq!(t.metrics.value("net.bytes", &labels), 100.0);
        assert_eq!(t.metrics.value("net.encoded_bytes", &labels), 40.0);
        assert_eq!(t.metrics.value("net.chunks", &labels), 3.0);
        assert_eq!(
            t.metrics.value("net.codec.bytes", &[("codec", "dict")]),
            30.0
        );
        assert_eq!(
            t.metrics.value("net.codec.bytes", &[("codec", "raw")]),
            10.0
        );
    }

    #[test]
    fn absorb_appends_in_order() {
        let l = Ledger::new();
        l.record(&"a".into(), &"b".into(), 1, 1, Purpose::ControlMessage);
        let scratch = Ledger::new();
        scratch.record(&"b".into(), &"c".into(), 2, 1, Purpose::Materialization);
        scratch.record(&"c".into(), &"d".into(), 3, 1, Purpose::InterDbmsPipeline);
        l.absorb(&scratch);
        let snap = l.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[1].bytes, 2);
        assert_eq!(snap[2].bytes, 3);
        // The source ledger is left untouched.
        assert_eq!(scratch.len(), 2);
    }
}
