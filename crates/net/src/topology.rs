//! Simulated network fabric: named nodes connected by links with bandwidth
//! and latency.
//!
//! The paper's testbed is seven physical nodes (one DBMS each) on a 1 Gbit
//! LAN; the data-transfer experiments (Fig 14) additionally place the
//! middleware in a managed cloud and consider geo-distributed DBMSes. A
//! [`Topology`] captures those scenarios as per-node-pair links.

use crate::params;
use std::collections::HashMap;

/// A node in the fabric, identified by name (e.g. `db1`, `mediator`,
/// `client`, `cloud`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub String);

impl NodeId {
    pub fn new(name: impl Into<String>) -> NodeId {
        NodeId(name.into())
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for NodeId {
    fn from(s: &str) -> NodeId {
        NodeId(s.to_string())
    }
}

/// Directed link properties.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Bytes per simulated millisecond.
    pub bandwidth: f64,
    /// Per-transfer setup latency in simulated milliseconds.
    pub latency_ms: f64,
}

impl Link {
    pub const LAN: Link = Link {
        bandwidth: params::LAN_BANDWIDTH_BYTES_PER_MS,
        latency_ms: params::LAN_LATENCY_MS,
    };

    pub const GEO: Link = Link {
        bandwidth: params::GEO_BANDWIDTH_BYTES_PER_MS,
        latency_ms: params::GEO_LATENCY_MS,
    };

    pub const CLOUD: Link = Link {
        bandwidth: params::CLOUD_BANDWIDTH_BYTES_PER_MS,
        latency_ms: params::CLOUD_LATENCY_MS,
    };

    /// Local loopback: effectively free.
    pub const LOCAL: Link = Link {
        bandwidth: f64::INFINITY,
        latency_ms: 0.0,
    };

    /// Time to move `bytes` over this link with the given per-byte protocol
    /// overhead multiplier.
    pub fn transfer_ms(&self, bytes: u64, protocol_overhead: f64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.latency_ms + bytes as f64 * protocol_overhead / self.bandwidth
    }
}

/// Network deployment scenario for a link-classification default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// All nodes on one LAN (the paper's main cluster).
    OnPremise,
    /// Every DBMS in a different datacenter.
    GeoDistributed,
}

/// A set of nodes and the links between them. Lookups fall back to a
/// scenario default so only special links need registering.
#[derive(Debug, Clone)]
pub struct Topology {
    default_link: Link,
    /// Overrides for specific (from, to) pairs (symmetric unless both
    /// directions are registered).
    links: HashMap<(NodeId, NodeId), Link>,
    nodes: Vec<NodeId>,
}

impl Topology {
    pub fn new(scenario: Scenario) -> Topology {
        Topology {
            default_link: match scenario {
                Scenario::OnPremise => Link::LAN,
                Scenario::GeoDistributed => Link::GEO,
            },
            links: HashMap::new(),
            nodes: Vec::new(),
        }
    }

    /// All DBMSes on one LAN — the paper's seven-node cluster.
    pub fn lan(node_names: &[&str]) -> Topology {
        let mut t = Topology::new(Scenario::OnPremise);
        for n in node_names {
            t.add_node(NodeId::new(*n));
        }
        t
    }

    /// Every DBMS in its own datacenter.
    pub fn geo(node_names: &[&str]) -> Topology {
        let mut t = Topology::new(Scenario::GeoDistributed);
        for n in node_names {
            t.add_node(NodeId::new(*n));
        }
        t
    }

    pub fn add_node(&mut self, node: NodeId) {
        if !self.nodes.contains(&node) {
            self.nodes.push(node);
        }
    }

    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Register a node reached over the metered cloud link from everywhere
    /// (the managed-cloud middleware placement of Fig 14).
    pub fn add_cloud_node(&mut self, node: NodeId) {
        let existing: Vec<NodeId> = self.nodes.clone();
        for other in existing {
            self.set_link(other.clone(), node.clone(), Link::CLOUD);
            self.set_link(node.clone(), other, Link::CLOUD);
        }
        self.add_node(node);
    }

    pub fn set_link(&mut self, from: NodeId, to: NodeId, link: Link) {
        self.add_node(from.clone());
        self.add_node(to.clone());
        self.links.insert((from, to), link);
    }

    /// Link between two nodes. Same node → loopback; otherwise a registered
    /// override or the scenario default.
    pub fn link(&self, from: &NodeId, to: &NodeId) -> Link {
        if from == to {
            return Link::LOCAL;
        }
        if let Some(l) = self.links.get(&(from.clone(), to.clone())) {
            return *l;
        }
        if let Some(l) = self.links.get(&(to.clone(), from.clone())) {
            return *l;
        }
        self.default_link
    }

    /// Transfer time between two nodes.
    pub fn transfer_ms(
        &self,
        from: &NodeId,
        to: &NodeId,
        bytes: u64,
        protocol_overhead: f64,
    ) -> f64 {
        self.link(from, to).transfer_ms(bytes, protocol_overhead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_is_free() {
        let t = Topology::lan(&["db1", "db2"]);
        let a = NodeId::new("db1");
        assert_eq!(t.transfer_ms(&a, &a, 1_000_000, 1.0), 0.0);
    }

    #[test]
    fn lan_default_applies() {
        let t = Topology::lan(&["db1", "db2"]);
        let ms = t.transfer_ms(&"db1".into(), &"db2".into(), 125_000_000, 1.0);
        // 125 MB at 125 KB/ms = 1000 ms + latency.
        assert!((ms - 1000.5).abs() < 1e-9, "{ms}");
    }

    #[test]
    fn protocol_overhead_multiplies() {
        let t = Topology::lan(&["a", "b"]);
        let binary = t.transfer_ms(&"a".into(), &"b".into(), 1_000_000, 1.0);
        let jdbc = t.transfer_ms(&"a".into(), &"b".into(), 1_000_000, 2.0);
        assert!(jdbc > binary * 1.5);
    }

    #[test]
    fn cloud_node_links_override_default() {
        let mut t = Topology::lan(&["db1", "db2"]);
        t.add_cloud_node(NodeId::new("cloud"));
        let lan = t.link(&"db1".into(), &"db2".into());
        let cloud = t.link(&"db1".into(), &"cloud".into());
        assert_eq!(lan, Link::LAN);
        assert_eq!(cloud, Link::CLOUD);
        // Symmetric.
        assert_eq!(t.link(&"cloud".into(), &"db2".into()), Link::CLOUD);
    }

    #[test]
    fn geo_slower_than_lan() {
        let lan = Topology::lan(&["a", "b"]);
        let geo = Topology::geo(&["a", "b"]);
        let bytes = 10_000_000;
        assert!(
            geo.transfer_ms(&"a".into(), &"b".into(), bytes, 1.0)
                > lan.transfer_ms(&"a".into(), &"b".into(), bytes, 1.0)
        );
    }

    #[test]
    fn zero_bytes_zero_time() {
        let t = Topology::geo(&["a", "b"]);
        assert_eq!(t.transfer_ms(&"a".into(), &"b".into(), 0, 1.0), 0.0);
    }
}
