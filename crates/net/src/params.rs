//! Simulation constants, each tied to the paper observation it models.
//!
//! All times are **simulated milliseconds** and all rates **bytes per
//! simulated millisecond**. Absolute values are not meant to match the
//! paper's testbed; the *ratios* between them reproduce the relative
//! behaviours the evaluation section leans on.

/// 1 Gbit/s LAN link (the paper's cluster interconnect): 125 MB/s.
pub const LAN_BANDWIDTH_BYTES_PER_MS: f64 = 125_000.0;

/// LAN round-trip latency per transfer setup.
pub const LAN_LATENCY_MS: f64 = 0.5;

/// Inter-datacenter bandwidth for the geo-distributed scenario (Fig 14):
/// substantially below LAN, as in WAN-aware systems (Sec VII).
pub const GEO_BANDWIDTH_BYTES_PER_MS: f64 = 20_000.0;

/// Inter-datacenter latency.
pub const GEO_LATENCY_MS: f64 = 50.0;

/// On-premise/DBMS to managed-cloud link (where the mediator or XDB runs in
/// the Fig 14 scenarios): metered and slower than LAN.
pub const CLOUD_BANDWIDTH_BYTES_PER_MS: f64 = 50_000.0;

/// Cloud link latency.
pub const CLOUD_LATENCY_MS: f64 = 20.0;

/// Per-byte multiplier of the PostgreSQL binary transfer protocol (baseline
/// protocol; Garlic and XDB use it — Section VI-B). Row-at-a-time wrapper
/// protocols run well below line rate: 2.5× ≈ 50 MB/s effective, in line
/// with measured postgres_fdw throughput.
pub const BINARY_PROTOCOL_OVERHEAD: f64 = 2.5;

/// Per-byte multiplier of JDBC row-at-a-time transfer. The paper observes
/// μ_Presto ≈ 150s vs μ_Garlic ≈ 80s on the same intermediate data because
/// "Presto uses JDBC-connectors while our Garlic implementation leverages
/// PostgreSQL's binary transfer protocols"; the 2× ratio over the binary
/// protocol reproduces that observation.
pub const JDBC_PROTOCOL_OVERHEAD: f64 = 5.0;

/// Extra drain time a pipelined consumer needs after its last input tuple
/// arrives (keeps composed timings strictly monotone in producer time).
pub const PIPELINE_DRAIN_MS: f64 = 1.0;

/// Cost of one optimizer "consulting" round-trip to a DBMS (EXPLAIN probe,
/// Section IV-B2). Dominates the `ann` phase of Fig 15. Scaled to the
/// simulation's compressed time base (the paper's ann phase is a few
/// seconds against executions of tens to hundreds of seconds).
pub const CONSULT_ROUNDTRIP_MS: f64 = 12.0;

/// Cost of one metadata/catalog fetch during query preparation (`prep`
/// phase of Fig 15).
pub const METADATA_FETCH_MS: f64 = 6.0;

/// Cost of executing one DDL statement during delegation (catalog-only
/// work plus one LAN round-trip; the paper's delegation overhead is
/// "negligible (up to 10s)" against executions of tens to hundreds of
/// seconds).
pub const DDL_ROUNDTRIP_MS: f64 = 10.0;

#[cfg(test)]
mod tests {
    use super::*;

    /// The relative orderings the evaluation's shapes depend on.
    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn parameter_orderings_hold() {
        // JDBC costs more per byte than the binary protocol (μ_Presto >
        // μ_Garlic in Fig 1/9).
        assert!(JDBC_PROTOCOL_OVERHEAD > BINARY_PROTOCOL_OVERHEAD);
        // Geo links are slower and higher-latency than the LAN (Fig 14).
        assert!(GEO_BANDWIDTH_BYTES_PER_MS < LAN_BANDWIDTH_BYTES_PER_MS);
        assert!(GEO_LATENCY_MS > LAN_LATENCY_MS);
        // The metered cloud link sits between them.
        assert!(CLOUD_BANDWIDTH_BYTES_PER_MS < LAN_BANDWIDTH_BYTES_PER_MS);
        assert!(CLOUD_BANDWIDTH_BYTES_PER_MS > GEO_BANDWIDTH_BYTES_PER_MS);
        // Consulting costs more than plain DDL round-trips (EXPLAIN probes
        // include planning work); both dwarf per-transfer LAN latency.
        assert!(CONSULT_ROUNDTRIP_MS >= DDL_ROUNDTRIP_MS);
        assert!(DDL_ROUNDTRIP_MS > LAN_LATENCY_MS);
        // Pipelined consumers drain quickly relative to any round-trip.
        assert!(PIPELINE_DRAIN_MS < DDL_ROUNDTRIP_MS);
    }
}
