//! `net::wire` — the compressed columnar wire format for inter-engine
//! dataflow edges.
//!
//! Every edge (implicit pipeline, explicit materialization, mediator
//! fragment fetch, final result) serializes its relation into one
//! [`Encoded`] block: per column a variant tag, a codec tag, and a
//! self-contained payload. Codec *state* (dictionaries, frame-of-reference
//! minima, run lengths) is computed over the whole edge — never per
//! transport chunk — so the encoded byte count that feeds the ledger and
//! the simulated transfer-time model is invariant under
//! `stream_chunk_rows`. Transport chunking only changes the granularity at
//! which [`StreamDecoder::take`] is driven (and the quarantined
//! `net.chunks` metric).
//!
//! Codecs:
//! - `dict` — first-appearance dictionary plus bit-packed indices (`Str`);
//! - `forpack` — frame-of-reference minimum plus bit-packed deltas
//!   (`Int`, `Date`);
//! - `rle` — run-length encoded values (`Bool`); the null bitmap of every
//!   typed column is run-length encoded the same way;
//! - `raw` — the fallback: `Float` bit patterns, tagged `Mixed` values,
//!   and any column where the candidate codec does not beat raw.
//!
//! Selection is deterministic: size the candidate and the raw body
//! exactly (a cheap pass that materializes neither), keep the smaller
//! (the candidate wins ties), and only then emit the winner's payload.
//! Decoding rebuilds the exact [`Column`] variant — all-NULL typed
//! columns included — so query results and downstream raw-byte
//! accounting are bit-identical to an unencoded transfer.

use std::sync::Arc;

use xdb_sql::column::Bitmap;
use xdb_sql::hash::FastMap;
use xdb_sql::{Column, TypedCol, Value};

/// Per-frame framing cost in bytes: `nrows` + `ncols`, each `u32`.
const FRAME_HEADER_BYTES: u64 = 8;
/// Per-column framing cost: variant tag (1) + codec tag (1) + payload
/// length (4).
pub const COLUMN_HEADER_BYTES: u64 = 6;

/// Which encoding a column's payload uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    /// First-appearance dictionary + bit-packed indices.
    Dict,
    /// Frame-of-reference minimum + bit-packed deltas.
    ForPack,
    /// Run-length encoded values.
    Rle,
    /// Uncompressed fallback.
    Raw,
}

impl Codec {
    pub fn label(self) -> &'static str {
        match self {
            Codec::Dict => "dict",
            Codec::ForPack => "forpack",
            Codec::Rle => "rle",
            Codec::Raw => "raw",
        }
    }
}

/// Column variant tags on the wire (decode must rebuild the exact
/// [`Column`] variant, so the tag travels with the payload).
const TAG_INT: u8 = 0;
const TAG_FLOAT: u8 = 1;
const TAG_STR: u8 = 2;
const TAG_DATE: u8 = 3;
const TAG_BOOL: u8 = 4;
const TAG_MIXED: u8 = 5;

/// One encoded column: variant tag, codec, payload.
#[derive(Debug, Clone)]
pub struct EncodedColumn {
    tag: u8,
    codec: Codec,
    payload: Vec<u8>,
}

impl EncodedColumn {
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Bytes this column contributes to the encoded frame (header + payload).
    pub fn encoded_bytes(&self) -> u64 {
        COLUMN_HEADER_BYTES + self.payload.len() as u64
    }
}

/// A whole relation encoded for one edge. The codec state is computed over
/// the full relation, so [`Encoded::encoded_bytes`] is independent of the
/// transport chunk size.
#[derive(Debug, Clone)]
pub struct Encoded {
    columns: Vec<EncodedColumn>,
    nrows: usize,
}

/// Byte accounting for one encoded edge, ready for the transfer ledger.
#[derive(Debug, Clone)]
pub struct WireStats {
    /// Encoded frame size — what the simulated transfer model charges.
    pub encoded_bytes: u64,
    /// Transport chunks the edge ships in (`ceil(rows / chunk_rows)`;
    /// one frame for empty or unbounded edges).
    pub chunks: u64,
    /// Encoded bytes attributed per codec label, deterministic order.
    pub codec_bytes: Vec<(&'static str, u64)>,
}

impl Encoded {
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn columns(&self) -> &[EncodedColumn] {
        &self.columns
    }

    /// Encoded frame size in bytes. An empty relation ships no payload
    /// (the schema is already known from the DDL), matching the raw
    /// model where `wire_bytes() == 0` for zero rows.
    pub fn encoded_bytes(&self) -> u64 {
        if self.nrows == 0 {
            return 0;
        }
        FRAME_HEADER_BYTES
            + self
                .columns
                .iter()
                .map(EncodedColumn::encoded_bytes)
                .sum::<u64>()
    }

    /// Encoded bytes per codec label, in fixed label order (zero entries
    /// omitted) so metric emission is deterministic.
    pub fn codec_bytes(&self) -> Vec<(&'static str, u64)> {
        let mut out = Vec::new();
        if self.nrows == 0 {
            return out;
        }
        for codec in [Codec::Dict, Codec::ForPack, Codec::Rle, Codec::Raw] {
            let bytes: u64 = self
                .columns
                .iter()
                .filter(|c| c.codec == codec)
                .map(EncodedColumn::encoded_bytes)
                .sum();
            if bytes > 0 {
                out.push((codec.label(), bytes));
            }
        }
        out
    }

    /// Ledger-ready accounting for this edge at a given transport chunk
    /// size (`0` = unbounded, i.e. one chunk).
    pub fn stats(&self, chunk_rows: usize) -> WireStats {
        WireStats {
            encoded_bytes: self.encoded_bytes(),
            chunks: chunk_count(self.nrows as u64, chunk_rows),
            codec_bytes: self.codec_bytes(),
        }
    }
}

/// Number of transport chunks for an edge of `rows` rows: `0` chunk rows
/// means unbounded (a single frame), and even an empty edge ships one
/// frame.
pub fn chunk_count(rows: u64, chunk_rows: usize) -> u64 {
    if rows == 0 || chunk_rows == 0 {
        1
    } else {
        rows.div_ceil(chunk_rows as u64)
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Encode a relation's columns for one edge. `nrows` is carried for empty
/// relations (no columns or zero-length columns).
pub fn encode(columns: &[Column], nrows: usize) -> Encoded {
    Encoded {
        columns: columns.iter().map(encode_column).collect(),
        nrows,
    }
}

fn encode_column(col: &Column) -> EncodedColumn {
    match col {
        Column::Int(c) => encode_int(c),
        Column::Date(c) => encode_date(c),
        Column::Str(c) => encode_str(c),
        Column::Bool(c) => encode_bool(c),
        Column::Float(c) => EncodedColumn {
            tag: TAG_FLOAT,
            codec: Codec::Raw,
            payload: float_raw_body(c),
        },
        Column::Mixed(values) => EncodedColumn {
            tag: TAG_MIXED,
            codec: Codec::Raw,
            payload: mixed_raw_body(values),
        },
    }
}

// ---------------------------------------------------------------------------
// Sizing-only measurement
// ---------------------------------------------------------------------------

/// Sizing-only twin of [`Encoded`]: the exact codec choice and payload
/// length of every column, with no payload materialized.
///
/// Several edges only ever consume the byte *accounting* of the codec —
/// the mediator and Sclera baselines re-load a relation they already hold
/// in memory, and the final-result edge charges the ledger without the
/// client decoding anything. For those, [`measure`] produces
/// [`WireStats`] guaranteed equal to `encode(..).stats(..)` (the sizing
/// rules are shared and property-tested) at a fraction of the cost.
#[derive(Debug, Clone)]
pub struct Measured {
    /// `(codec, payload length)` per column.
    columns: Vec<(Codec, u64)>,
    nrows: usize,
}

impl Measured {
    /// Same formula as [`Encoded::encoded_bytes`].
    pub fn encoded_bytes(&self) -> u64 {
        if self.nrows == 0 {
            return 0;
        }
        FRAME_HEADER_BYTES
            + self
                .columns
                .iter()
                .map(|(_, len)| COLUMN_HEADER_BYTES + len)
                .sum::<u64>()
    }

    /// Same label order and omission rule as [`Encoded::codec_bytes`].
    pub fn codec_bytes(&self) -> Vec<(&'static str, u64)> {
        let mut out = Vec::new();
        if self.nrows == 0 {
            return out;
        }
        for codec in [Codec::Dict, Codec::ForPack, Codec::Rle, Codec::Raw] {
            let bytes: u64 = self
                .columns
                .iter()
                .filter(|(c, _)| *c == codec)
                .map(|(_, len)| COLUMN_HEADER_BYTES + len)
                .sum();
            if bytes > 0 {
                out.push((codec.label(), bytes));
            }
        }
        out
    }

    pub fn stats(&self, chunk_rows: usize) -> WireStats {
        WireStats {
            encoded_bytes: self.encoded_bytes(),
            chunks: chunk_count(self.nrows as u64, chunk_rows),
            codec_bytes: self.codec_bytes(),
        }
    }

    /// `(codec, payload length)` per column, in schema order.
    pub fn columns(&self) -> &[(Codec, u64)] {
        &self.columns
    }
}

/// Size an edge without encoding it. See [`Measured`].
pub fn measure(columns: &[Column], nrows: usize) -> Measured {
    Measured {
        columns: columns.iter().map(measure_column).collect(),
        nrows,
    }
}

/// Exact byte count of the null-run prefix [`put_null_runs`] emits.
fn null_runs_len(nulls: &Bitmap) -> usize {
    let mut scratch = Vec::new();
    put_null_runs(&mut scratch, nulls);
    scratch.len()
}

fn measure_column(col: &Column) -> (Codec, u64) {
    let (codec, len) = match col {
        Column::Int(c) => {
            let prefix = null_runs_len(&c.nulls);
            let mut count = 0u64;
            let mut vmin = i64::MAX;
            let mut vmax = i64::MIN;
            for v in present_values(c) {
                count += 1;
                vmin = vmin.min(*v);
                vmax = vmax.max(*v);
            }
            let min = if count == 0 { 0 } else { vmin };
            let max_delta = if count == 0 {
                0
            } else {
                vmax.wrapping_sub(min) as u64
            };
            let width = bits_for(max_delta);
            let pack = prefix + varint_len(zigzag(min)) + 1 + packed_bytes(count, width);
            let raw = prefix + 8 * count as usize;
            if raw < pack {
                (Codec::Raw, raw)
            } else {
                (Codec::ForPack, pack)
            }
        }
        Column::Date(c) => {
            let prefix = null_runs_len(&c.nulls);
            let mut count = 0u64;
            let mut vmin = i64::MAX;
            let mut vmax = i64::MIN;
            for v in present_values(c) {
                count += 1;
                vmin = vmin.min(*v as i64);
                vmax = vmax.max(*v as i64);
            }
            let min = if count == 0 { 0 } else { vmin };
            let max_delta = if count == 0 {
                0
            } else {
                vmax.wrapping_sub(min) as u64
            };
            let width = bits_for(max_delta);
            let pack = prefix + varint_len(zigzag(min)) + 1 + packed_bytes(count, width);
            let raw = prefix + 4 * count as usize;
            if raw < pack {
                (Codec::Raw, raw)
            } else {
                (Codec::ForPack, pack)
            }
        }
        Column::Str(c) => {
            let prefix = null_runs_len(&c.nulls);
            let mut index: FastMap<&str, u64> = FastMap::default();
            let mut raw_body = 0usize;
            let mut dict_entries = 0usize;
            let mut dict_len = 0u64;
            let mut present = 0u64;
            for v in present_values(c) {
                raw_body += varint_len(v.len() as u64) + v.len();
                present += 1;
                index.entry(v.as_ref()).or_insert_with(|| {
                    dict_entries += varint_len(v.len() as u64) + v.len();
                    dict_len += 1;
                    dict_len - 1
                });
            }
            let width = bits_for(dict_len.saturating_sub(1));
            let dict = prefix + varint_len(dict_len) + dict_entries + packed_bytes(present, width);
            let raw = prefix + raw_body;
            if raw < dict {
                (Codec::Raw, raw)
            } else {
                (Codec::Dict, dict)
            }
        }
        Column::Bool(c) => {
            let prefix = null_runs_len(&c.nulls);
            let mut count = 0usize;
            let mut nruns = 0u64;
            let mut run_bytes = 0usize;
            let mut last: Option<bool> = None;
            let mut run_len = 0u64;
            for v in present_values(c) {
                count += 1;
                if last == Some(*v) {
                    run_len += 1;
                } else {
                    if last.is_some() {
                        run_bytes += 1 + varint_len(run_len);
                    }
                    nruns += 1;
                    last = Some(*v);
                    run_len = 1;
                }
            }
            if last.is_some() {
                run_bytes += 1 + varint_len(run_len);
            }
            let rle = prefix + varint_len(nruns) + run_bytes;
            let raw = prefix + count;
            if raw < rle {
                (Codec::Raw, raw)
            } else {
                (Codec::Rle, rle)
            }
        }
        Column::Float(c) => {
            let prefix = null_runs_len(&c.nulls);
            (Codec::Raw, prefix + 8 * (c.len() - c.nulls.count_ones()))
        }
        Column::Mixed(values) => {
            let mut len = 0usize;
            for v in values.iter() {
                len += match v {
                    Value::Null => 1,
                    Value::Int(i) => 1 + varint_len(zigzag(*i)),
                    Value::Float(_) => 1 + 8,
                    Value::Str(s) => 1 + varint_len(s.len() as u64) + s.len(),
                    Value::Date(d) => 1 + varint_len(zigzag(*d as i64)),
                    Value::Bool(_) => 2,
                };
            }
            (Codec::Raw, len)
        }
    };
    (codec, len as u64)
}

/// Exact byte count [`put_varint`] would emit for `v`.
fn varint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

/// Exact byte count a [`BitWriter`] produces for `count` values of
/// `width` bits each.
fn packed_bytes(count: u64, width: u8) -> usize {
    ((count * u64::from(width)).div_ceil(8)) as usize
}

/// Frame-of-reference sizing/emission for `Int` columns. The sizing pass
/// computes both body sizes exactly (min/max/count over present values)
/// without materializing either payload; only the winner is emitted. Raw
/// wins iff strictly smaller, same rule the byte-compare selection used.
fn encode_int(c: &TypedCol<i64>) -> EncodedColumn {
    let mut prefix = Vec::new();
    put_null_runs(&mut prefix, &c.nulls);
    let mut count = 0u64;
    let mut vmin = i64::MAX;
    let mut vmax = i64::MIN;
    for v in present_values(c) {
        count += 1;
        vmin = vmin.min(*v);
        vmax = vmax.max(*v);
    }
    let min = if count == 0 { 0 } else { vmin };
    // The per-value deltas `v.wrapping_sub(min) as u64` are exactly the
    // true differences (they fit u64 by construction), so the largest is
    // the delta of the maximum value.
    let max_delta = if count == 0 {
        0
    } else {
        vmax.wrapping_sub(min) as u64
    };
    let width = bits_for(max_delta);
    let pack_size = prefix.len() + varint_len(zigzag(min)) + 1 + packed_bytes(count, width);
    let raw_size = prefix.len() + 8 * count as usize;
    let mut out = prefix;
    out.reserve_exact(pack_size.min(raw_size) - out.len());
    if raw_size < pack_size {
        for v in present_values(c) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        EncodedColumn {
            tag: TAG_INT,
            codec: Codec::Raw,
            payload: out,
        }
    } else {
        put_varint(&mut out, zigzag(min));
        out.push(width);
        let mut bw = BitWriter::new();
        for v in present_values(c) {
            bw.put(v.wrapping_sub(min) as u64, width);
        }
        out.extend_from_slice(&bw.finish());
        EncodedColumn {
            tag: TAG_INT,
            codec: Codec::ForPack,
            payload: out,
        }
    }
}

/// `Date` twin of [`encode_int`]: values widen to `i64` for the packed
/// body, raw ships 4 bytes per present value.
fn encode_date(c: &TypedCol<i32>) -> EncodedColumn {
    let mut prefix = Vec::new();
    put_null_runs(&mut prefix, &c.nulls);
    let mut count = 0u64;
    let mut vmin = i64::MAX;
    let mut vmax = i64::MIN;
    for v in present_values(c) {
        count += 1;
        vmin = vmin.min(*v as i64);
        vmax = vmax.max(*v as i64);
    }
    let min = if count == 0 { 0 } else { vmin };
    let max_delta = if count == 0 {
        0
    } else {
        vmax.wrapping_sub(min) as u64
    };
    let width = bits_for(max_delta);
    let pack_size = prefix.len() + varint_len(zigzag(min)) + 1 + packed_bytes(count, width);
    let raw_size = prefix.len() + 4 * count as usize;
    let mut out = prefix;
    out.reserve_exact(pack_size.min(raw_size) - out.len());
    if raw_size < pack_size {
        for v in present_values(c) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        EncodedColumn {
            tag: TAG_DATE,
            codec: Codec::Raw,
            payload: out,
        }
    } else {
        put_varint(&mut out, zigzag(min));
        out.push(width);
        let mut bw = BitWriter::new();
        for v in present_values(c) {
            bw.put((*v as i64).wrapping_sub(min) as u64, width);
        }
        out.extend_from_slice(&bw.finish());
        EncodedColumn {
            tag: TAG_DATE,
            codec: Codec::ForPack,
            payload: out,
        }
    }
}

/// First-appearance dictionary sizing/emission for `Str` columns. One
/// pass builds the dictionary index and the exact raw/dict body sizes;
/// only the winning payload is materialized.
fn encode_str(c: &TypedCol<Arc<str>>) -> EncodedColumn {
    let mut prefix = Vec::new();
    put_null_runs(&mut prefix, &c.nulls);
    // FNV instead of SipHash: dictionary ids are assigned in scan order, so
    // the emitted bytes cannot depend on the hasher.
    let mut index: FastMap<&str, u64> = FastMap::default();
    let mut dict: Vec<&Arc<str>> = Vec::new();
    let mut ids: Vec<u64> = Vec::with_capacity(c.len());
    let mut raw_body = 0usize;
    let mut dict_entries = 0usize;
    for v in present_values(c) {
        raw_body += varint_len(v.len() as u64) + v.len();
        let next = dict.len() as u64;
        let id = *index.entry(v.as_ref()).or_insert_with(|| {
            dict_entries += varint_len(v.len() as u64) + v.len();
            dict.push(v);
            next
        });
        ids.push(id);
    }
    let width = bits_for((dict.len() as u64).saturating_sub(1));
    let dict_size = prefix.len()
        + varint_len(dict.len() as u64)
        + dict_entries
        + packed_bytes(ids.len() as u64, width);
    let raw_size = prefix.len() + raw_body;
    let mut out = prefix;
    out.reserve_exact(dict_size.min(raw_size) - out.len());
    if raw_size < dict_size {
        for v in present_values(c) {
            put_varint(&mut out, v.len() as u64);
            out.extend_from_slice(v.as_bytes());
        }
        EncodedColumn {
            tag: TAG_STR,
            codec: Codec::Raw,
            payload: out,
        }
    } else {
        put_varint(&mut out, dict.len() as u64);
        for entry in &dict {
            put_varint(&mut out, entry.len() as u64);
            out.extend_from_slice(entry.as_bytes());
        }
        let mut bw = BitWriter::new();
        for id in &ids {
            bw.put(*id, width);
        }
        out.extend_from_slice(&bw.finish());
        EncodedColumn {
            tag: TAG_STR,
            codec: Codec::Dict,
            payload: out,
        }
    }
}

/// Run-length sizing/emission for `Bool` columns.
fn encode_bool(c: &TypedCol<bool>) -> EncodedColumn {
    let mut prefix = Vec::new();
    put_null_runs(&mut prefix, &c.nulls);
    let mut runs: Vec<(bool, u64)> = Vec::new();
    let mut count = 0usize;
    for v in present_values(c) {
        count += 1;
        match runs.last_mut() {
            Some((val, len)) if *val == *v => *len += 1,
            _ => runs.push((*v, 1)),
        }
    }
    let rle_size = prefix.len()
        + varint_len(runs.len() as u64)
        + runs
            .iter()
            .map(|(_, len)| 1 + varint_len(*len))
            .sum::<usize>();
    let raw_size = prefix.len() + count;
    let mut out = prefix;
    out.reserve_exact(rle_size.min(raw_size) - out.len());
    if raw_size < rle_size {
        for v in present_values(c) {
            out.push(u8::from(*v));
        }
        EncodedColumn {
            tag: TAG_BOOL,
            codec: Codec::Raw,
            payload: out,
        }
    } else {
        put_varint(&mut out, runs.len() as u64);
        for (v, len) in &runs {
            out.push(u8::from(*v));
            put_varint(&mut out, *len);
        }
        EncodedColumn {
            tag: TAG_BOOL,
            codec: Codec::Rle,
            payload: out,
        }
    }
}

fn float_raw_body(c: &TypedCol<f64>) -> Vec<u8> {
    let mut out = Vec::new();
    put_null_runs(&mut out, &c.nulls);
    out.reserve_exact(8 * (c.len() - c.nulls.count_ones()));
    for v in present_values(c) {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

/// Tagged row-major encoding for `Mixed` columns (value tags carry the
/// nulls, so there is no null-run prefix).
fn mixed_raw_body(values: &[Value]) -> Vec<u8> {
    let mut out = Vec::new();
    for v in values {
        match v {
            Value::Null => out.push(0),
            Value::Int(i) => {
                out.push(1);
                put_varint(&mut out, zigzag(*i));
            }
            Value::Float(f) => {
                out.push(2);
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                out.push(3);
                put_varint(&mut out, s.len() as u64);
                out.extend_from_slice(s.as_bytes());
            }
            Value::Date(d) => {
                out.push(4);
                put_varint(&mut out, zigzag(*d as i64));
            }
            Value::Bool(b) => {
                out.push(5);
                out.push(u8::from(*b));
            }
        }
    }
    out
}

fn present_values<T>(c: &TypedCol<T>) -> impl Iterator<Item = &T> {
    c.data
        .iter()
        .enumerate()
        .filter(|(i, _)| !c.nulls.get(*i))
        .map(|(_, v)| v)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Incremental decoder: [`StreamDecoder::take`] appends the next `k` rows
/// of every column into typed accumulators, so a consumer can ingest the
/// edge morsel by morsel. The output of `take(1)×n`, `take(4096)…`, and
/// `take(n)` is bit-identical by construction.
pub struct StreamDecoder<'a> {
    columns: Vec<ColDecoder<'a>>,
    remaining: usize,
}

impl<'a> StreamDecoder<'a> {
    pub fn new(enc: &'a Encoded) -> StreamDecoder<'a> {
        StreamDecoder::with_morsel_capacity(enc, enc.nrows)
    }

    /// Like [`StreamDecoder::new`] but sizing the per-column accumulators
    /// for `capacity`-row morsels instead of the whole edge — the right
    /// constructor when every chunk is drained via
    /// [`StreamDecoder::take_columns`] rather than accumulated for one
    /// final [`StreamDecoder::finish`].
    pub fn with_morsel_capacity(enc: &'a Encoded, capacity: usize) -> StreamDecoder<'a> {
        let columns = enc
            .columns
            .iter()
            .map(|c| ColDecoder::new(c, capacity.min(enc.nrows)))
            .collect();
        StreamDecoder {
            columns,
            remaining: enc.nrows,
        }
    }

    /// Rows not yet decoded.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Decode the next `rows` rows (clamped to what remains) into the
    /// per-column accumulators.
    pub fn take(&mut self, rows: usize) {
        let k = rows.min(self.remaining);
        for col in &mut self.columns {
            col.take(k);
        }
        self.remaining -= k;
    }

    /// Decode the next `rows` rows (clamped to what remains) and hand
    /// them back as standalone morsel columns, leaving the accumulators
    /// empty for the next morsel. Driving this per chunk yields columns
    /// whose concatenation is bit-identical to one [`StreamDecoder::finish`].
    pub fn take_columns(&mut self, rows: usize) -> Vec<Column> {
        let k = rows.min(self.remaining);
        for col in &mut self.columns {
            col.take(k);
        }
        self.remaining -= k;
        self.columns
            .iter_mut()
            .map(|c| c.take_morsel(self.remaining.min(k)))
            .collect()
    }

    /// Finish the stream, yielding the reconstructed columns. Panics if
    /// rows remain undecoded.
    pub fn finish(self) -> Vec<Column> {
        assert_eq!(self.remaining, 0, "stream decoder finished early");
        self.columns.into_iter().map(ColDecoder::finish).collect()
    }
}

/// Decode a whole block in one chunk.
pub fn decode(enc: &Encoded) -> Vec<Column> {
    decode_chunked(enc, 0)
}

/// Decode a block by driving the stream decoder in `chunk_rows`-row
/// morsels (`0` = unbounded, a single morsel).
pub fn decode_chunked(enc: &Encoded, chunk_rows: usize) -> Vec<Column> {
    let mut dec = StreamDecoder::new(enc);
    let step = if chunk_rows == 0 {
        enc.nrows.max(1)
    } else {
        chunk_rows
    };
    while dec.remaining() > 0 {
        dec.take(step);
    }
    dec.finish()
}

enum ColDecoder<'a> {
    Int {
        nulls: NullCursor,
        body: PackOrRaw<'a>,
        acc: TypedCol<i64>,
    },
    Date {
        nulls: NullCursor,
        body: PackOrRaw<'a>,
        acc: TypedCol<i32>,
    },
    Float {
        nulls: NullCursor,
        cur: Cursor<'a>,
        acc: TypedCol<f64>,
    },
    Str {
        nulls: NullCursor,
        body: StrBody<'a>,
        acc: TypedCol<Arc<str>>,
    },
    Bool {
        nulls: NullCursor,
        body: BoolBody<'a>,
        acc: TypedCol<bool>,
    },
    Mixed {
        cur: Cursor<'a>,
        acc: Vec<Value>,
    },
}

enum PackOrRaw<'a> {
    Pack {
        min: i64,
        width: u8,
        bits: BitReader<'a>,
    },
    /// Raw fallback. `value_bytes` is the little-endian width of one
    /// present value: 8 for `Int` (`i64`), 4 for `Date` (`i32`) — it must
    /// match what `int_raw_body`/`date_raw_body` wrote.
    Raw { cur: Cursor<'a>, value_bytes: u8 },
}

enum StrBody<'a> {
    Dict {
        dict: Vec<Arc<str>>,
        width: u8,
        bits: BitReader<'a>,
    },
    Raw(Cursor<'a>),
}

enum BoolBody<'a> {
    Rle {
        runs: Vec<(bool, u64)>,
        idx: usize,
        left: u64,
    },
    Raw(Cursor<'a>),
}

impl<'a> ColDecoder<'a> {
    fn new(col: &'a EncodedColumn, nrows: usize) -> ColDecoder<'a> {
        let mut cur = Cursor::new(&col.payload);
        match col.tag {
            TAG_MIXED => ColDecoder::Mixed {
                cur,
                acc: Vec::with_capacity(nrows),
            },
            TAG_INT => {
                let nulls = NullCursor::parse(&mut cur);
                let body = PackOrRaw::parse(col.codec, cur, 8);
                ColDecoder::Int {
                    nulls,
                    body,
                    acc: TypedCol::with_capacity(nrows),
                }
            }
            TAG_DATE => {
                let nulls = NullCursor::parse(&mut cur);
                let body = PackOrRaw::parse(col.codec, cur, 4);
                ColDecoder::Date {
                    nulls,
                    body,
                    acc: TypedCol::with_capacity(nrows),
                }
            }
            TAG_FLOAT => {
                let nulls = NullCursor::parse(&mut cur);
                ColDecoder::Float {
                    nulls,
                    cur,
                    acc: TypedCol::with_capacity(nrows),
                }
            }
            TAG_STR => {
                let nulls = NullCursor::parse(&mut cur);
                let body = match col.codec {
                    Codec::Dict => {
                        let dict_len = cur.get_varint() as usize;
                        let mut dict = Vec::with_capacity(dict_len);
                        for _ in 0..dict_len {
                            let len = cur.get_varint() as usize;
                            let bytes = cur.get_bytes(len);
                            let s = std::str::from_utf8(bytes).expect("wire: utf8 dict entry");
                            dict.push(Arc::<str>::from(s));
                        }
                        let width = bits_for((dict_len as u64).saturating_sub(1));
                        StrBody::Dict {
                            dict,
                            width,
                            bits: BitReader::new(cur.rest()),
                        }
                    }
                    _ => StrBody::Raw(cur),
                };
                ColDecoder::Str {
                    nulls,
                    body,
                    acc: TypedCol::with_capacity(nrows),
                }
            }
            TAG_BOOL => {
                let nulls = NullCursor::parse(&mut cur);
                let body = match col.codec {
                    Codec::Rle => {
                        let nruns = cur.get_varint() as usize;
                        let mut runs = Vec::with_capacity(nruns);
                        for _ in 0..nruns {
                            let v = cur.get_u8() != 0;
                            let len = cur.get_varint();
                            runs.push((v, len));
                        }
                        let left = runs.first().map(|(_, l)| *l).unwrap_or(0);
                        BoolBody::Rle { runs, idx: 0, left }
                    }
                    _ => BoolBody::Raw(cur),
                };
                ColDecoder::Bool {
                    nulls,
                    body,
                    acc: TypedCol::with_capacity(nrows),
                }
            }
            other => panic!("wire: unknown column tag {other}"),
        }
    }

    fn take(&mut self, k: usize) {
        match self {
            ColDecoder::Int { nulls, body, acc } => {
                for _ in 0..k {
                    if nulls.next_is_null() {
                        acc.push_null();
                    } else {
                        acc.push(body.next());
                    }
                }
            }
            ColDecoder::Date { nulls, body, acc } => {
                for _ in 0..k {
                    if nulls.next_is_null() {
                        acc.push_null();
                    } else {
                        acc.push(body.next() as i32);
                    }
                }
            }
            ColDecoder::Float { nulls, cur, acc } => {
                for _ in 0..k {
                    if nulls.next_is_null() {
                        acc.push_null();
                    } else {
                        acc.push(f64::from_bits(cur.get_u64le()));
                    }
                }
            }
            ColDecoder::Str { nulls, body, acc } => {
                for _ in 0..k {
                    if nulls.next_is_null() {
                        acc.push_null();
                    } else {
                        acc.push(body.next());
                    }
                }
            }
            ColDecoder::Bool { nulls, body, acc } => {
                for _ in 0..k {
                    if nulls.next_is_null() {
                        acc.push_null();
                    } else {
                        acc.push(body.next());
                    }
                }
            }
            ColDecoder::Mixed { cur, acc } => {
                for _ in 0..k {
                    let v = match cur.get_u8() {
                        0 => Value::Null,
                        1 => Value::Int(unzigzag(cur.get_varint())),
                        2 => Value::Float(f64::from_bits(cur.get_u64le())),
                        3 => {
                            let len = cur.get_varint() as usize;
                            let bytes = cur.get_bytes(len);
                            let s = std::str::from_utf8(bytes).expect("wire: utf8 value");
                            Value::Str(Arc::from(s))
                        }
                        4 => Value::Date(unzigzag(cur.get_varint()) as i32),
                        5 => Value::Bool(cur.get_u8() != 0),
                        other => panic!("wire: unknown value tag {other}"),
                    };
                    acc.push(v);
                }
            }
        }
    }

    fn finish(self) -> Column {
        match self {
            ColDecoder::Int { acc, .. } => Column::Int(Arc::new(acc)),
            ColDecoder::Date { acc, .. } => Column::Date(Arc::new(acc)),
            ColDecoder::Float { acc, .. } => Column::Float(Arc::new(acc)),
            ColDecoder::Str { acc, .. } => Column::Str(Arc::new(acc)),
            ColDecoder::Bool { acc, .. } => Column::Bool(Arc::new(acc)),
            ColDecoder::Mixed { acc, .. } => Column::Mixed(Arc::new(acc)),
        }
    }

    /// Swap the accumulated rows out as one morsel column, leaving a
    /// fresh accumulator (sized for `next_cap` rows) behind.
    fn take_morsel(&mut self, next_cap: usize) -> Column {
        match self {
            ColDecoder::Int { acc, .. } => Column::Int(Arc::new(std::mem::replace(
                acc,
                TypedCol::with_capacity(next_cap),
            ))),
            ColDecoder::Date { acc, .. } => Column::Date(Arc::new(std::mem::replace(
                acc,
                TypedCol::with_capacity(next_cap),
            ))),
            ColDecoder::Float { acc, .. } => Column::Float(Arc::new(std::mem::replace(
                acc,
                TypedCol::with_capacity(next_cap),
            ))),
            ColDecoder::Str { acc, .. } => Column::Str(Arc::new(std::mem::replace(
                acc,
                TypedCol::with_capacity(next_cap),
            ))),
            ColDecoder::Bool { acc, .. } => Column::Bool(Arc::new(std::mem::replace(
                acc,
                TypedCol::with_capacity(next_cap),
            ))),
            ColDecoder::Mixed { acc, .. } => Column::Mixed(Arc::new(std::mem::replace(
                acc,
                Vec::with_capacity(next_cap),
            ))),
        }
    }
}

impl PackOrRaw<'_> {
    fn parse(codec: Codec, mut cur: Cursor<'_>, value_bytes: u8) -> PackOrRaw<'_> {
        match codec {
            Codec::ForPack => {
                let min = unzigzag(cur.get_varint());
                let width = cur.get_u8();
                PackOrRaw::Pack {
                    min,
                    width,
                    bits: BitReader::new(cur.rest()),
                }
            }
            _ => PackOrRaw::Raw { cur, value_bytes },
        }
    }

    fn next(&mut self) -> i64 {
        match self {
            PackOrRaw::Pack { min, width, bits } => min.wrapping_add(bits.get(*width) as i64),
            PackOrRaw::Raw { cur, value_bytes } => match value_bytes {
                4 => i64::from(cur.get_i32le()),
                _ => cur.get_u64le() as i64,
            },
        }
    }
}

impl StrBody<'_> {
    fn next(&mut self) -> Arc<str> {
        match self {
            StrBody::Dict { dict, width, bits } => {
                let id = bits.get(*width) as usize;
                Arc::clone(&dict[id])
            }
            StrBody::Raw(cur) => {
                let len = cur.get_varint() as usize;
                let bytes = cur.get_bytes(len);
                let s = std::str::from_utf8(bytes).expect("wire: utf8 value");
                Arc::from(s)
            }
        }
    }
}

impl BoolBody<'_> {
    fn next(&mut self) -> bool {
        match self {
            BoolBody::Rle { runs, idx, left } => {
                while *left == 0 {
                    *idx += 1;
                    *left = runs[*idx].1;
                }
                *left -= 1;
                runs[*idx].0
            }
            BoolBody::Raw(cur) => cur.get_u8() != 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Null-run, varint, and bit-level primitives
// ---------------------------------------------------------------------------

/// Run-length encode a null bitmap: varint run count, then alternating run
/// lengths starting with a PRESENT run (which may be zero-length when the
/// column opens with a null).
fn put_null_runs(out: &mut Vec<u8>, nulls: &Bitmap) {
    let n = nulls.len();
    let mut runs: Vec<u64> = Vec::new();
    let mut expect_null = false;
    let mut i = 0;
    while i < n {
        let mut len = 0u64;
        while i < n && nulls.get(i) == expect_null {
            len += 1;
            i += 1;
        }
        runs.push(len);
        expect_null = !expect_null;
    }
    put_varint(out, runs.len() as u64);
    for r in &runs {
        put_varint(out, *r);
    }
}

/// Streaming cursor over null runs: `next_is_null()` per row, in order.
struct NullCursor {
    runs: Vec<u64>,
    idx: usize,
    left: u64,
}

impl NullCursor {
    fn parse(cur: &mut Cursor<'_>) -> NullCursor {
        let nruns = cur.get_varint() as usize;
        let mut runs = Vec::with_capacity(nruns);
        for _ in 0..nruns {
            runs.push(cur.get_varint());
        }
        let left = runs.first().copied().unwrap_or(0);
        NullCursor { runs, idx: 0, left }
    }

    fn next_is_null(&mut self) -> bool {
        while self.left == 0 {
            self.idx += 1;
            self.left = self.runs[self.idx];
        }
        self.left -= 1;
        // Even runs (0, 2, …) are present; odd runs are null.
        self.idx % 2 == 1
    }
}

/// Minimum bit width able to represent `v` (0 for `v == 0`).
fn bits_for(v: u64) -> u8 {
    (64 - v.leading_zeros()) as u8
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Byte cursor with panicking reads (the format is produced by [`encode`]
/// in the same process; corruption is a bug, not an input error).
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.buf[self.pos];
        self.pos += 1;
        b
    }

    fn get_varint(&mut self) -> u64 {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8();
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return v;
            }
            shift += 7;
        }
    }

    fn get_bytes(&mut self, n: usize) -> &'a [u8] {
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    fn get_u64le(&mut self) -> u64 {
        u64::from_le_bytes(self.get_bytes(8).try_into().unwrap())
    }

    fn get_i32le(&mut self) -> i32 {
        i32::from_le_bytes(self.get_bytes(4).try_into().unwrap())
    }

    fn rest(&self) -> &'a [u8] {
        &self.buf[self.pos..]
    }
}

/// LSB-first bit packer for fixed-width values.
struct BitWriter {
    buf: Vec<u8>,
    acc: u128,
    nbits: u32,
}

impl BitWriter {
    fn new() -> BitWriter {
        BitWriter {
            buf: Vec::new(),
            acc: 0,
            nbits: 0,
        }
    }

    fn put(&mut self, v: u64, width: u8) {
        if width == 0 {
            return;
        }
        self.acc |= u128::from(v) << self.nbits;
        self.nbits += u32::from(width);
        while self.nbits >= 8 {
            self.buf.push((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.buf.push((self.acc & 0xff) as u8);
        }
        self.buf
    }
}

/// LSB-first bit reader matching [`BitWriter`].
struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize,
    acc: u128,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(buf: &'a [u8]) -> BitReader<'a> {
        BitReader {
            buf,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    fn get(&mut self, width: u8) -> u64 {
        if width == 0 {
            return 0;
        }
        while self.nbits < u32::from(width) {
            self.acc |= u128::from(self.buf[self.pos]) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
        let mask = (1u128 << width) - 1;
        let v = (self.acc & mask) as u64;
        self.acc >>= width;
        self.nbits -= u32::from(width);
        v
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use xdb_sql::column::Column;

    fn col(values: &[Value]) -> Column {
        Column::from_values(values.to_vec())
    }

    fn roundtrip(c: &Column) -> Column {
        let enc = encode(std::slice::from_ref(c), c.len());
        let mut cols = decode(&enc);
        assert_eq!(cols.len(), 1);
        cols.pop().unwrap()
    }

    #[test]
    fn int_forpack_roundtrips_and_compresses() {
        let values: Vec<Value> = (0..1000)
            .map(|i| {
                if i % 53 == 0 {
                    Value::Null
                } else {
                    Value::Int(1_000_000 + (i % 97))
                }
            })
            .collect();
        let c = col(&values);
        let enc = encode(std::slice::from_ref(&c), c.len());
        assert_eq!(enc.columns[0].codec, Codec::ForPack);
        assert!(enc.encoded_bytes() < c.wire_bytes() / 4);
        let back = roundtrip(&c);
        assert!(matches!(back, Column::Int(_)));
        assert_eq!(back, c);
    }

    #[test]
    fn int_extremes_roundtrip() {
        let c = col(&[
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Null,
            Value::Int(0),
        ]);
        assert_eq!(roundtrip(&c), c);
    }

    #[test]
    fn date_raw_fallback_roundtrips() {
        // A single far-out date makes the FOR-pack body (varint min +
        // width byte) lose to raw (4 bytes/value); the raw decode must
        // read back i32-width values, not the Int path's 8 bytes.
        for c in [
            col(&[Value::Date(2_000_000)]),
            col(&[Value::Date(i32::MIN), Value::Date(i32::MAX)]),
            col(&[
                Value::Null,
                Value::Date(i32::MAX),
                Value::Null,
                Value::Date(i32::MIN),
            ]),
        ] {
            let enc = encode(std::slice::from_ref(&c), c.len());
            assert_eq!(enc.columns[0].codec, Codec::Raw);
            let back = roundtrip(&c);
            assert!(matches!(back, Column::Date(_)));
            assert_eq!(back, c);
        }
    }

    #[test]
    fn str_dict_roundtrips_and_compresses() {
        let tags = ["alpha", "beta", "gamma-longer-tag", "delta"];
        let values: Vec<Value> = (0..500)
            .map(|i| {
                if i % 41 == 0 {
                    Value::Null
                } else {
                    Value::Str(Arc::from(tags[i % tags.len()]))
                }
            })
            .collect();
        let c = col(&values);
        let enc = encode(std::slice::from_ref(&c), c.len());
        assert_eq!(enc.columns[0].codec, Codec::Dict);
        assert!(enc.encoded_bytes() < c.wire_bytes() / 4);
        let back = roundtrip(&c);
        assert!(matches!(back, Column::Str(_)));
        assert_eq!(back, c);
    }

    #[test]
    fn high_entropy_strings_fall_back_to_raw() {
        let values: Vec<Value> = (0..64)
            .map(|i| Value::Str(Arc::from(format!("unique-value-{i:08}"))))
            .collect();
        let c = col(&values);
        let enc = encode(std::slice::from_ref(&c), c.len());
        assert_eq!(enc.columns[0].codec, Codec::Raw);
        assert_eq!(roundtrip(&c), c);
    }

    #[test]
    fn bool_rle_roundtrips_and_compresses() {
        let values: Vec<Value> = (0..600)
            .map(|i| {
                if i == 300 {
                    Value::Null
                } else {
                    Value::Bool(i < 400)
                }
            })
            .collect();
        let c = col(&values);
        let enc = encode(std::slice::from_ref(&c), c.len());
        assert_eq!(enc.columns[0].codec, Codec::Rle);
        assert!(enc.encoded_bytes() < c.wire_bytes() / 4);
        assert_eq!(roundtrip(&c), c);
    }

    #[test]
    fn float_bits_roundtrip_exactly() {
        let c = col(&[
            Value::Float(0.1),
            Value::Float(-0.0),
            Value::Float(f64::NAN),
            Value::Null,
            Value::Float(f64::INFINITY),
        ]);
        let back = roundtrip(&c);
        // NaN != NaN under value equality; compare bit patterns instead.
        let (Column::Float(a), Column::Float(b)) = (&c, &back) else {
            panic!("expected float columns");
        };
        assert_eq!(a.nulls, b.nulls);
        let bits = |t: &TypedCol<f64>| t.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(a), bits(b));
    }

    #[test]
    fn mixed_and_all_null_columns_keep_their_variant() {
        let mixed = col(&[Value::Int(1), Value::Str(Arc::from("x")), Value::Null]);
        assert!(mixed.is_mixed());
        let back = roundtrip(&mixed);
        assert!(back.is_mixed());
        assert_eq!(back, mixed);

        // An all-NULL typed column must come back typed, not Mixed.
        let mut t = TypedCol::<i64>::with_capacity(3);
        t.push_null();
        t.push_null();
        t.push_null();
        let c = Column::Int(Arc::new(t));
        let back = roundtrip(&c);
        assert!(matches!(back, Column::Int(_)));
        assert_eq!(back, c);
    }

    #[test]
    fn empty_relation_encodes_to_zero_bytes() {
        let c = col(&[]);
        let enc = encode(std::slice::from_ref(&c), 0);
        assert_eq!(enc.encoded_bytes(), 0);
        assert!(enc.codec_bytes().is_empty());
        let back = decode(&enc);
        assert_eq!(back[0].len(), 0);
    }

    #[test]
    fn encoded_bytes_invariant_under_chunk_size_and_chunked_decode_identical() {
        let values: Vec<Value> = (0..997)
            .map(|i| {
                if i % 13 == 0 {
                    Value::Null
                } else {
                    Value::Int(i as i64 * 37)
                }
            })
            .collect();
        let c = col(&values);
        let enc = encode(std::slice::from_ref(&c), c.len());
        let whole = decode_chunked(&enc, 0);
        for chunk in [1usize, 7, 64, 4096] {
            let stats = enc.stats(chunk);
            assert_eq!(stats.encoded_bytes, enc.encoded_bytes());
            assert_eq!(stats.chunks, (997u64).div_ceil(chunk as u64));
            assert_eq!(decode_chunked(&enc, chunk), whole);
        }
        assert_eq!(enc.stats(0).chunks, 1);
    }

    #[test]
    fn take_columns_morsels_match_whole_decode() {
        let ints = col(&(0..997)
            .map(|i| {
                if i % 13 == 0 {
                    Value::Null
                } else {
                    Value::Int(i * 37)
                }
            })
            .collect::<Vec<_>>());
        let strs = col(&(0..997)
            .map(|i| Value::Str(Arc::from(["north", "south", "east", "west"][i % 4])))
            .collect::<Vec<_>>());
        let enc = encode(&[ints, strs], 997);
        let whole = decode(&enc);
        for chunk in [1usize, 7, 256, 4096] {
            let mut dec = StreamDecoder::with_morsel_capacity(&enc, chunk);
            let mut row = 0;
            while dec.remaining() > 0 {
                let morsel = dec.take_columns(chunk);
                let k = morsel[0].len();
                assert!(k > 0 && k <= chunk);
                for (w, m) in whole.iter().zip(&morsel) {
                    assert!(
                        std::mem::discriminant(w) == std::mem::discriminant(m),
                        "morsel variant must match whole-decode variant"
                    );
                    for i in 0..k {
                        assert_eq!(w.value(row + i), m.value(i));
                    }
                }
                row += k;
            }
            assert_eq!(row, 997);
        }
    }

    #[test]
    fn chunk_count_edges() {
        assert_eq!(chunk_count(0, 4096), 1);
        assert_eq!(chunk_count(10, 0), 1);
        assert_eq!(chunk_count(4096, 4096), 1);
        assert_eq!(chunk_count(4097, 4096), 2);
    }

    #[test]
    fn codec_bytes_sum_matches_frame_payload() {
        let ints = col(&(0..100).map(Value::Int).collect::<Vec<_>>());
        let strs = col(&(0..100)
            .map(|i| Value::Str(Arc::from(["a", "b"][i % 2])))
            .collect::<Vec<_>>());
        let enc = encode(&[ints, strs], 100);
        let sum: u64 = enc.codec_bytes().iter().map(|(_, b)| *b).sum();
        assert_eq!(sum + FRAME_HEADER_BYTES, enc.encoded_bytes());
    }
}
