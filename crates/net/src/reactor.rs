//! Morsel-driven edge reactor: a small, dependency-free event loop.
//!
//! Producer tasks enqueue decoded morsels onto bounded per-edge channels
//! ([`EdgeChannel`]) and a shared worker pool ([`spawn`]) runs the
//! chunk-granular work (today: stream-decoding an encoded edge ahead of
//! the consumer), so encoding, decoding, and consumer compute for
//! different chunks of one edge overlap on the wall clock.
//!
//! Like the workspace-local `parking_lot`/`criterion` shims, this module
//! is built purely on `std`: a mutex+condvar ring buffer for the
//! channels and detached worker threads fed from one injector queue.
//!
//! # Determinism
//!
//! The reactor moves *wall-clock* work between threads; it never touches
//! the simulated clock. Morsels are delivered strictly in edge order
//! (single producer, single consumer, FIFO ring), so every consumer
//! observes the exact byte sequence the inline decoder would have
//! produced. All reactor-specific telemetry lives under the quarantined
//! `sched.reactor_*` prefix.
//!
//! # Crash safety
//!
//! A worker that panics mid-edge must not leave the consumer blocked on
//! an empty channel (nor a producer blocked on a full one). Both sides
//! hold a [`PoisonGuard`]; an unwinding panic poisons the channel, which
//! wakes every waiter with [`Poisoned`] instead of deadlocking. The pool
//! itself catches the unwind so its worker thread survives for the next
//! job.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Bounded depth of one edge channel, in morsels. Small on purpose: the
/// point is pipelining, not buffering — a slow consumer exerts
/// backpressure on the decoder after this many chunks.
pub const EDGE_CHANNEL_CAPACITY: usize = 4;

/// Resolve the reactor worker count from the environment.
///
/// `XDB_REACTOR_THREADS` overrides (0 = off, everything runs inline on
/// the owning task's thread); `XDB_SEQUENTIAL` pins it to 0 exactly like
/// it pins the executor partitions to 1. The default is the machine
/// parallelism *minus one* (the consumer thread is busy too), capped at
/// 8 — on a single-core host the reactor defaults to off, because
/// thread-level overlap cannot pay for its own handoffs there.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("XDB_REACTOR_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n;
        }
    }
    if std::env::var_os("XDB_SEQUENTIAL").is_some() {
        return 0;
    }
    std::thread::available_parallelism().map_or(0, |n| n.get().saturating_sub(1).min(8))
}

/// Error returned by channel operations after a panic poisoned the edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Poisoned;

impl std::fmt::Display for Poisoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("edge channel poisoned by a panicking worker")
    }
}

struct ChanState<T> {
    queue: VecDeque<T>,
    closed: bool,
    poisoned: bool,
}

/// A bounded single-producer/single-consumer morsel channel with
/// poisoning. `send` blocks while the ring is full (backpressure);
/// `recv` blocks while it is empty. Poisoning (from either side) wakes
/// all waiters immediately.
pub struct EdgeChannel<T> {
    state: Mutex<ChanState<T>>,
    space: Condvar,
    ready: Condvar,
    capacity: usize,
}

impl<T> EdgeChannel<T> {
    pub fn new(capacity: usize) -> EdgeChannel<T> {
        EdgeChannel {
            state: Mutex::new(ChanState {
                queue: VecDeque::with_capacity(capacity),
                closed: false,
                poisoned: false,
            }),
            space: Condvar::new(),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, ChanState<T>> {
        // The std mutex only poisons if a holder panicked *inside* the
        // critical section; our explicit `poisoned` flag is the protocol.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueue one morsel, blocking while the channel is full. Fails once
    /// the channel is poisoned or closed (the receiver bailed out).
    pub fn send(&self, value: T) -> Result<(), Poisoned> {
        let mut st = self.lock();
        loop {
            if st.poisoned || st.closed {
                return Err(Poisoned);
            }
            if st.queue.len() < self.capacity {
                st.queue.push_back(value);
                self.ready.notify_one();
                return Ok(());
            }
            st = self.space.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Dequeue the next morsel in order. `Ok(None)` means the producer
    /// closed the channel and everything sent has been drained.
    pub fn recv(&self) -> Result<Option<T>, Poisoned> {
        let mut st = self.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                self.space.notify_one();
                return Ok(Some(v));
            }
            if st.poisoned {
                return Err(Poisoned);
            }
            if st.closed {
                return Ok(None);
            }
            st = self.ready.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Producer-side end-of-edge marker: receivers drain what was sent,
    /// then observe `Ok(None)`.
    pub fn close(&self) {
        let mut st = self.lock();
        st.closed = true;
        self.ready.notify_all();
        self.space.notify_all();
    }

    /// Mark the edge as crashed: every current and future waiter (both
    /// sides) immediately gets [`Poisoned`] instead of blocking forever.
    pub fn poison(&self) {
        let mut st = self.lock();
        st.poisoned = true;
        st.queue.clear();
        self.ready.notify_all();
        self.space.notify_all();
    }

    /// Whether the channel was poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.lock().poisoned
    }
}

/// Drop guard that poisons an [`EdgeChannel`] unless defused: arm it at
/// the top of a worker job (or a consumer drain loop); any unwinding
/// panic then poisons the window cleanly instead of deadlocking the
/// peer on the bounded channel.
pub struct PoisonGuard<T> {
    chan: Arc<EdgeChannel<T>>,
    armed: bool,
}

impl<T> PoisonGuard<T> {
    pub fn new(chan: Arc<EdgeChannel<T>>) -> PoisonGuard<T> {
        PoisonGuard { chan, armed: true }
    }

    /// The protected section completed normally; do not poison on drop.
    pub fn defuse(mut self) {
        self.armed = false;
    }
}

impl<T> Drop for PoisonGuard<T> {
    fn drop(&mut self) {
        if self.armed {
            self.chan.poison();
        }
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    /// Worker threads ever spawned.
    workers: usize,
    /// Workers currently parked on the injector queue.
    idle: usize,
}

/// The process-global worker pool behind [`spawn`]. Workers are spawned
/// lazily up to the caller's thread budget and then live for the whole
/// process, parked on one injector queue.
struct Pool {
    state: Mutex<PoolState>,
    ready: Condvar,
}

static POOL: OnceLock<Pool> = OnceLock::new();
/// Total jobs ever submitted (self-observability; surfaces through the
/// quarantined `sched.reactor_*` series at the call sites).
static JOBS_SPAWNED: AtomicUsize = AtomicUsize::new(0);

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            queue: VecDeque::new(),
            workers: 0,
            idle: 0,
        }),
        ready: Condvar::new(),
    })
}

fn worker_loop() {
    let pool = pool();
    let mut st = pool.state.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        if let Some(job) = st.queue.pop_front() {
            drop(st);
            // A panicking job must not kill the pool thread: edge
            // cleanup is the PoisonGuard's job, survival is ours.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            st = pool.state.lock().unwrap_or_else(|e| e.into_inner());
        } else {
            st.idle += 1;
            st = pool.ready.wait(st).unwrap_or_else(|e| e.into_inner());
            st.idle -= 1;
        }
    }
}

/// Submit a job to the reactor pool, growing it up to `max_workers`
/// threads. Jobs are picked up in submission order; a job that panics
/// poisons whatever [`PoisonGuard`] it armed and the worker survives.
pub fn spawn(max_workers: usize, job: impl FnOnce() + Send + 'static) {
    JOBS_SPAWNED.fetch_add(1, Ordering::Relaxed);
    let pool = pool();
    let mut st = pool.state.lock().unwrap_or_else(|e| e.into_inner());
    st.queue.push_back(Box::new(job));
    if st.idle == 0 && st.workers < max_workers.max(1) {
        st.workers += 1;
        std::thread::Builder::new()
            .name("xdb-reactor".into())
            .spawn(worker_loop)
            .expect("spawn reactor worker");
    }
    drop(st);
    pool.ready.notify_one();
}

/// Total jobs ever submitted to the pool (wall-clock observability).
pub fn jobs_spawned() -> u64 {
    JOBS_SPAWNED.load(Ordering::Relaxed) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn channel_delivers_in_order_with_backpressure() {
        let chan = Arc::new(EdgeChannel::<usize>::new(2));
        let tx = Arc::clone(&chan);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            tx.close();
        });
        let mut got = Vec::new();
        while let Some(v) = chan.recv().unwrap() {
            got.push(v);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_after_close_drains_then_ends() {
        let chan = EdgeChannel::<u8>::new(4);
        chan.send(1).unwrap();
        chan.send(2).unwrap();
        chan.close();
        assert_eq!(chan.recv(), Ok(Some(1)));
        assert_eq!(chan.recv(), Ok(Some(2)));
        assert_eq!(chan.recv(), Ok(None));
    }

    #[test]
    fn send_to_closed_channel_fails() {
        let chan = EdgeChannel::<u8>::new(1);
        chan.close();
        assert_eq!(chan.send(9), Err(Poisoned));
    }

    /// The crash test of the reactor contract: a worker that panics
    /// mid-edge poisons the window; the consumer wakes with an error
    /// instead of deadlocking on the bounded channel.
    #[test]
    fn panicking_worker_poisons_instead_of_deadlocking() {
        let chan = Arc::new(EdgeChannel::<usize>::new(2));
        let tx = Arc::clone(&chan);
        spawn(2, move || {
            let _guard = PoisonGuard::new(tx.clone());
            tx.send(0).unwrap();
            panic!("simulated decode fault");
        });
        // First morsel arrives, then the poison — never a hang.
        let mut poisoned = false;
        for _ in 0..3 {
            match chan.recv() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(Poisoned) => {
                    poisoned = true;
                    break;
                }
            }
        }
        assert!(poisoned, "panic must surface as Poisoned");
        assert!(chan.is_poisoned());
    }

    /// A consumer that bails early must unblock a producer stuck on a
    /// full channel (receiver-side guard poisons on drop).
    #[test]
    fn receiver_guard_unblocks_blocked_producer() {
        let chan = Arc::new(EdgeChannel::<usize>::new(1));
        let tx = Arc::clone(&chan);
        let producer = std::thread::spawn(move || {
            let mut sent = 0;
            while tx.send(sent).is_ok() {
                sent += 1;
            }
            sent
        });
        {
            let guard = PoisonGuard::new(Arc::clone(&chan));
            assert!(chan.recv().unwrap().is_some());
            drop(guard); // consumer "panics" here
        }
        let sent = producer.join().unwrap();
        assert!(sent >= 1);
    }

    #[test]
    fn pool_runs_jobs_and_survives_panics() {
        let flag = Arc::new(AtomicBool::new(false));
        spawn(2, || panic!("first job dies"));
        let f = Arc::clone(&flag);
        spawn(2, move || f.store(true, Ordering::SeqCst));
        for _ in 0..200 {
            if flag.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        panic!("pool did not run the second job after a panicking first");
    }
}
