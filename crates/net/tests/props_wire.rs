//! Property tests for the columnar wire format: encode → decode must be
//! the identity on arbitrary columns (nulls, extremes, and degenerate
//! all-NULL shapes included), chunked streaming must reassemble the exact
//! same columns as a whole-frame decode, and the encoded size must be
//! independent of the transport chunking.

use proptest::prelude::*;
use xdb_net::wire::{self, chunk_count};
use xdb_sql::column::{Column, ColumnBuilder};
use xdb_sql::value::Value;

/// One cell of column kind `kind` (0 Int, 1 Float, 2 Str, 3 Date, 4 Bool,
/// 5 mixed), NULLs included. Small Int/Str domains exercise FOR-packing
/// and the dictionary; `any` draws exercise the raw fallback.
fn cell(kind: u8) -> BoxedStrategy<Value> {
    match kind {
        0 => prop_oneof![
            Just(Value::Null),
            (0i64..50).prop_map(Value::Int),
            any::<i64>().prop_map(Value::Int),
        ]
        .boxed(),
        1 => prop_oneof![Just(Value::Null), any::<f64>().prop_map(Value::Float),].boxed(),
        2 => prop_oneof![
            Just(Value::Null),
            (0u32..8).prop_map(|i| Value::str(format!("tag-{i}"))),
            "[a-z]{0,12}".prop_map(Value::str),
        ]
        .boxed(),
        3 => prop_oneof![
            Just(Value::Null),
            (-40000i64..40000).prop_map(|d| Value::Date(d as i32)),
            any::<i32>().prop_map(Value::Date),
        ]
        .boxed(),
        4 => prop_oneof![Just(Value::Null), any::<bool>().prop_map(Value::Bool),].boxed(),
        _ => prop_oneof![
            Just(Value::Null),
            any::<i64>().prop_map(Value::Int),
            any::<f64>().prop_map(Value::Float),
            "[a-z]{0,6}".prop_map(Value::str),
            (-40000i64..40000).prop_map(|d| Value::Date(d as i32)),
            any::<bool>().prop_map(Value::Bool),
        ]
        .boxed(),
    }
}

fn build(values: &[Value]) -> Column {
    let mut b = ColumnBuilder::with_capacity(values.len());
    for v in values {
        b.push(v.clone());
    }
    b.finish()
}

/// A small relation: 1–3 columns of independent kinds over a shared row
/// count (0 rows included — the empty-frame edge case).
fn relation() -> BoxedStrategy<Vec<Column>> {
    BoxedStrategy::new(|rng| {
        let n = (0usize..97).new_value(rng);
        let width = (1usize..4).new_value(rng);
        (0..width)
            .map(|_| {
                let kind = (0u8..6).new_value(rng);
                let values: Vec<Value> = (0..n).map(|_| cell(kind).new_value(rng)).collect();
                build(&values)
            })
            .collect()
    })
}

proptest! {
    /// encode → decode is the identity: every value (bitwise for floats)
    /// and every layout variant survives the wire.
    #[test]
    fn roundtrip_is_identity(cols in relation()) {
        let n = cols[0].len();
        let enc = wire::encode(&cols, n);
        let back = wire::decode(&enc);
        prop_assert_eq!(back.len(), cols.len());
        for (b, c) in back.iter().zip(cols.iter()) {
            prop_assert_eq!(b, c);
            // Variant preservation keeps downstream raw-byte accounting
            // invariant under the codec.
            prop_assert_eq!(b.wire_bytes(), c.wire_bytes());
        }
    }

    /// Streaming the frame in chunks of any size reassembles exactly the
    /// whole-frame decode, and the encoded size never depends on the
    /// transport chunking.
    #[test]
    fn chunked_decode_matches_whole(cols in relation(), pick in 0usize..6) {
        let chunk = [1usize, 3, 7, 64, 4096, 0][pick];
        let n = cols[0].len();
        let enc = wire::encode(&cols, n);
        let whole = wire::decode(&enc);
        let chunked = wire::decode_chunked(&enc, chunk);
        prop_assert_eq!(&chunked, &whole);
        let stats = enc.stats(chunk);
        prop_assert_eq!(stats.encoded_bytes, enc.encoded_bytes());
        prop_assert_eq!(stats.chunks, chunk_count(n as u64, chunk));
        // Empty frames report no codec series at all (encoded_bytes 0).
        if n > 0 {
            let total: u64 = stats.codec_bytes.iter().map(|(_, b)| *b).sum();
            prop_assert_eq!(
                total,
                enc.columns().iter().map(|c| c.encoded_bytes()).sum::<u64>()
            );
        } else {
            prop_assert!(stats.codec_bytes.is_empty());
        }
    }

    /// The sizing-only pass prices an edge exactly as the real encoder
    /// would — byte-for-byte, codec-for-codec — on arbitrary columns. This
    /// is the contract that lets stats-only edges (mediator re-loads, the
    /// final-result hop) skip payload materialization entirely.
    #[test]
    fn measure_matches_encode(cols in relation(), pick in 0usize..6) {
        let chunk = [1usize, 3, 7, 64, 4096, 0][pick];
        let n = cols[0].len();
        let enc = wire::encode(&cols, n);
        let measured = wire::measure(&cols, n);
        prop_assert_eq!(measured.encoded_bytes(), enc.encoded_bytes());
        prop_assert_eq!(measured.codec_bytes(), enc.codec_bytes());
        let es = enc.stats(chunk);
        let ms = measured.stats(chunk);
        prop_assert_eq!(ms.encoded_bytes, es.encoded_bytes);
        prop_assert_eq!(ms.chunks, es.chunks);
        prop_assert_eq!(ms.codec_bytes, es.codec_bytes);
        for (col, (codec, len)) in enc.columns().iter().zip(wire::measure(&cols, n).columns()) {
            prop_assert_eq!(*codec, col.codec());
            prop_assert_eq!(wire::COLUMN_HEADER_BYTES + len, col.encoded_bytes());
        }
    }
}
