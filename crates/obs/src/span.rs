//! The span model: one interval of simulated time, attributed to a lane
//! (an engine node, the client, or the network) and linked to a parent.

/// Index of a span inside its trace (== push order in the collector).
pub type SpanId = u32;

/// What a span represents in the query lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// The whole query, root of the tree.
    Query,
    /// One optimizer/executor phase (prep / lopt / ann / exec).
    Phase,
    /// One delegation-plan task deployed onto a DBMS.
    Task,
    /// One DDL round-trip of the delegation script.
    Ddl,
    /// Engine execution work (a materialization, the final XDB query, or a
    /// remote producer feeding a pipelined foreign scan).
    Exec,
    /// One physical operator inside an engine execution.
    Operator,
    /// One recorded wire transfer (ledger entry).
    Transfer,
    /// One consulting round-trip (metadata fetch or EXPLAIN probe).
    Consult,
}

impl SpanKind {
    /// Stable lowercase label, used as the Chrome-trace `cat` and in the
    /// text report.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Query => "query",
            SpanKind::Phase => "phase",
            SpanKind::Task => "task",
            SpanKind::Ddl => "ddl",
            SpanKind::Exec => "exec",
            SpanKind::Operator => "operator",
            SpanKind::Transfer => "transfer",
            SpanKind::Consult => "consult",
        }
    }
}

/// One interval of simulated time.
///
/// The span stores its *duration* rather than its end so that phase values
/// projected out of the trace are bit-exact: `(a + b) - a` is not `b` in
/// floating point, but a stored `dur_ms` round-trips unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    pub id: SpanId,
    /// Parent span; `None` only for the query root (and for roots of
    /// merged multi-query traces).
    pub parent: Option<SpanId>,
    pub kind: SpanKind,
    pub name: String,
    /// Display lane: an engine node name, the client node, or `"net"`.
    pub lane: String,
    /// Start, in simulated ms since the trace origin.
    pub start_ms: f64,
    pub dur_ms: f64,
    /// Sorted-insertion-order key/value annotations.
    pub attrs: Vec<(String, String)>,
}

impl Span {
    pub fn end_ms(&self) -> f64 {
        self.start_ms + self.dur_ms
    }

    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}
