//! The trace collector: a lock-cheap sink both executors feed.
//!
//! All span emission on the hot paths happens single-threaded (the client
//! builds the optimizer phases; the executors emit the execution timeline
//! post-barrier, in script order), so a plain mutex over a `Vec` is
//! uncontended; the disabled collector short-circuits before taking it.

use crate::span::{Span, SpanId, SpanKind};
use crate::trace::QueryTrace;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::OnceLock;

#[derive(Default)]
struct Inner {
    spans: Vec<Span>,
    counters: BTreeMap<String, f64>,
}

/// Collects spans and counters for one query submission.
pub struct TraceCollector {
    enabled: bool,
    inner: Mutex<Inner>,
}

impl Default for TraceCollector {
    fn default() -> Self {
        TraceCollector::new()
    }
}

impl TraceCollector {
    /// An enabled collector (the default for every submission — the coarse
    /// span set is a few dozen entries per query).
    pub fn new() -> TraceCollector {
        TraceCollector {
            enabled: true,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// A collector that drops everything; every operation is a no-op.
    pub fn disabled() -> TraceCollector {
        TraceCollector {
            enabled: false,
            inner: Mutex::new(Inner::default()),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a span; returns its id (0 when disabled).
    pub fn span(
        &self,
        kind: SpanKind,
        name: impl Into<String>,
        lane: impl Into<String>,
        parent: Option<SpanId>,
        start_ms: f64,
        dur_ms: f64,
    ) -> SpanId {
        if !self.enabled {
            return 0;
        }
        let mut inner = self.inner.lock();
        let id = inner.spans.len() as SpanId;
        inner.spans.push(Span {
            id,
            parent,
            kind,
            name: name.into(),
            lane: lane.into(),
            start_ms,
            dur_ms,
            attrs: Vec::new(),
        });
        id
    }

    /// Attach a key/value annotation to an existing span.
    pub fn attr(&self, id: SpanId, key: &str, value: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if let Some(span) = self.inner.lock().spans.get_mut(id as usize) {
            span.attrs.push((key.to_string(), value.into()));
        }
    }

    /// Set the duration of a span emitted before its extent was known.
    pub fn set_dur(&self, id: SpanId, dur_ms: f64) {
        if !self.enabled {
            return;
        }
        if let Some(span) = self.inner.lock().spans.get_mut(id as usize) {
            span.dur_ms = dur_ms;
        }
    }

    /// Bump a named counter.
    pub fn add(&self, counter: &str, amount: f64) {
        if !self.enabled {
            return;
        }
        *self
            .inner
            .lock()
            .counters
            .entry(counter.to_string())
            .or_insert(0.0) += amount;
    }

    /// Consume the collector into its trace.
    pub fn finish(self) -> QueryTrace {
        let inner = self.inner.into_inner();
        QueryTrace {
            spans: inner.spans,
            counters: inner.counters,
        }
    }
}

impl std::fmt::Debug for TraceCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("TraceCollector")
            .field("enabled", &self.enabled)
            .field("spans", &inner.spans.len())
            .field("counters", &inner.counters.len())
            .finish()
    }
}

/// A process-wide disabled collector, for code paths that need a
/// `&TraceCollector` but have nothing to record into.
pub fn disabled_collector() -> &'static TraceCollector {
    static DISABLED: OnceLock<TraceCollector> = OnceLock::new();
    DISABLED.get_or_init(TraceCollector::disabled)
}

/// Emission context threaded through the executors: the collector, the
/// simulated-time origin of the current section, and the parent span new
/// spans should hang off.
#[derive(Clone, Copy)]
pub struct TraceCtx<'a> {
    pub collector: &'a TraceCollector,
    /// Added to every `start_ms` passed to [`TraceCtx::span`]: executor
    /// timelines are relative to the end of the optimizer phases.
    pub base_ms: f64,
    pub parent: Option<SpanId>,
}

impl<'a> TraceCtx<'a> {
    pub fn new(
        collector: &'a TraceCollector,
        base_ms: f64,
        parent: Option<SpanId>,
    ) -> TraceCtx<'a> {
        TraceCtx {
            collector,
            base_ms,
            parent,
        }
    }

    /// A context that records nothing.
    pub fn off() -> TraceCtx<'static> {
        TraceCtx {
            collector: disabled_collector(),
            base_ms: 0.0,
            parent: None,
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.collector.is_enabled()
    }

    /// Record a span under this context's parent; `start_ms` is relative
    /// to `base_ms`.
    pub fn span(
        &self,
        kind: SpanKind,
        name: impl Into<String>,
        lane: impl Into<String>,
        start_ms: f64,
        dur_ms: f64,
    ) -> SpanId {
        self.collector.span(
            kind,
            name,
            lane,
            self.parent,
            self.base_ms + start_ms,
            dur_ms,
        )
    }

    /// Record a span under an explicit parent; `start_ms` is relative to
    /// `base_ms`.
    pub fn span_under(
        &self,
        parent: SpanId,
        kind: SpanKind,
        name: impl Into<String>,
        lane: impl Into<String>,
        start_ms: f64,
        dur_ms: f64,
    ) -> SpanId {
        self.collector.span(
            kind,
            name,
            lane,
            Some(parent),
            self.base_ms + start_ms,
            dur_ms,
        )
    }

    /// This context re-rooted under another parent span.
    pub fn under(&self, parent: SpanId) -> TraceCtx<'a> {
        TraceCtx {
            parent: Some(parent),
            ..*self
        }
    }

    pub fn add(&self, counter: &str, amount: f64) {
        self.collector.add(counter, amount);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_spans_and_counters() {
        let c = TraceCollector::new();
        let root = c.span(SpanKind::Query, "q", "client", None, 0.0, 0.0);
        let child = c.span(SpanKind::Phase, "prep", "client", Some(root), 0.0, 10.0);
        c.attr(child, "k", "v");
        c.set_dur(root, 10.0);
        c.add("consults", 2.0);
        c.add("consults", 1.0);
        let t = c.finish();
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans[0].dur_ms, 10.0);
        assert_eq!(t.spans[1].parent, Some(root));
        assert_eq!(t.spans[1].attr("k"), Some("v"));
        assert_eq!(t.counter("consults"), 3.0);
    }

    #[test]
    fn disabled_collector_is_a_no_op() {
        let c = TraceCollector::disabled();
        let id = c.span(SpanKind::Query, "q", "client", None, 0.0, 1.0);
        assert_eq!(id, 0);
        c.attr(id, "k", "v");
        c.add("x", 1.0);
        let t = c.finish();
        assert!(t.spans.is_empty());
        assert!(t.counters.is_empty());
    }

    #[test]
    fn ctx_applies_base_and_parent() {
        let c = TraceCollector::new();
        let root = c.span(SpanKind::Query, "q", "client", None, 0.0, 0.0);
        let ctx = TraceCtx::new(&c, 100.0, Some(root));
        let id = ctx.span(SpanKind::Exec, "work", "db1", 5.0, 2.0);
        let t = c.finish();
        assert_eq!(t.spans[id as usize].start_ms, 105.0);
        assert_eq!(t.spans[id as usize].parent, Some(root));
    }

    #[test]
    fn off_ctx_records_nothing() {
        let ctx = TraceCtx::off();
        assert!(!ctx.is_enabled());
        ctx.span(SpanKind::Exec, "work", "db1", 0.0, 1.0);
        ctx.add("x", 1.0);
    }
}
