//! The cost-model observatory: predicted-vs-observed accounting for every
//! cross-database placement decision.
//!
//! The annotator solves Eq. 1–3 over *estimated* raw bytes and static
//! per-engine profiles; the telemetry layer observes what actually
//! happened — true encoded bytes per wire edge, per-engine statement work,
//! consult cache hits. This module is the measurement half of a
//! feedback-driven cost model (RHEEMix-style): it defines the record types
//! that pair each decision's predicted cost components (the chosen
//! alternative AND every rejected candidate) with the observed outcome,
//! plus the error/regret arithmetic and the per-(engine, codec, edge
//! shape) aggregation that `repro calibrate` reports.
//!
//! Everything here is **purely observational**: records are derived from
//! already-deterministic state (annotation decisions, the script-ordered
//! transfer ledger, simulated-clock statement work), so they are
//! bit-identical across the sequential and parallel executors, reactor
//! on/off, partition counts, and stream-chunk sizes. Producing a record
//! never feeds back into planning or execution.
//!
//! **Placement regret** (per decision): the observed cost of the chosen
//! plan minus the model-predicted cost of the best *rejected* candidate.
//! The observed cost re-prices the chosen candidate's movement terms with
//! the observed wire (encoded bytes through the same link model) and
//! observed row counts, keeping the predicted compute terms — so regret
//! isolates the movement mispricing the wire codec introduces. Positive
//! regret means observation says a rejected candidate was modeled cheaper
//! than what the chosen plan actually cost: those are the systematically
//! wrong decisions, rankable by regret.

use crate::history::HistoryRecord;
use crate::json;
use crate::trace::{json_number, json_string};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One costed `(a, x_l, x_r)` alternative, with its Eq. 1–3 component
/// split (all in simulated ms; `predicted_ms` is the exact total the
/// optimizer compared).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CandidateObs {
    pub dbms: String,
    /// `implicit` / `explicit`.
    pub left_move: String,
    pub right_move: String,
    pub predicted_ms: f64,
    /// Pure wire time of the left input over estimated raw bytes.
    pub wire_left_ms: f64,
    pub wire_right_ms: f64,
    /// Full Eq. 2–3 movement cost (includes the wire term).
    pub move_left_ms: f64,
    pub move_right_ms: f64,
    /// Eq. 1 join execution cost at `dbms`.
    pub exec_ms: f64,
    pub startup_ms: f64,
    /// Multiplicative factor aligning this engine's compute cost to the
    /// calibration reference unit (`calibration.rs`).
    pub calib_factor: f64,
    pub chosen: bool,
}

/// One predicted wire edge of a decision joined against the observed
/// transfer ledger record it produced.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EdgeJoin {
    pub from: String,
    pub to: String,
    /// `implicit` / `explicit`.
    pub movement: String,
    /// Consuming engine node (whose protocol overhead priced the wire).
    pub engine: String,
    /// Dominant codec of the observed payload by encoded bytes
    /// (lexicographic tie-break); `none` when the edge was not matched.
    pub codec: String,
    pub pred_rows: u64,
    /// Estimated raw bytes the model charged.
    pub pred_bytes: u64,
    pub pred_wire_ms: f64,
    pub obs_rows: u64,
    pub obs_bytes: u64,
    /// True post-codec bytes that crossed the wire.
    pub obs_encoded_bytes: u64,
    /// The same link model re-priced with `obs_encoded_bytes`.
    pub obs_wire_ms: f64,
    /// False when no ledger record matched (e.g. the edge collapsed);
    /// unmatched edges are excluded from error aggregation.
    pub matched: bool,
}

impl EdgeJoin {
    /// `from->to/movement` — the aggregation key for edge-shape stats.
    pub fn shape(&self) -> String {
        format!("{}->{}/{}", self.from, self.to, self.movement)
    }
}

/// One placement decision: predicted components for every candidate,
/// joined observations for the chosen movements, error and regret.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DecisionObs {
    /// Annotation (bottom-up) order of the decision within its query.
    pub index: u64,
    /// Chosen engine node.
    pub dbms: String,
    /// Consult cost charged to the `ann` phase for this decision
    /// (`paid_consults × CONSULT_ROUNDTRIP_MS`).
    pub consult_ms: f64,
    /// Predicted Eq. 1 total of the chosen candidate (zero for heuristic
    /// policies, which cost nothing).
    pub predicted_ms: f64,
    /// Chosen cost re-priced with observed wire/rows (see module docs).
    pub observed_ms: f64,
    /// Model-predicted cost of the cheapest rejected candidate; zero when
    /// nothing was rejected.
    pub best_rejected_ms: f64,
    /// `observed_ms - best_rejected_ms` when a rejected candidate exists,
    /// else zero. Positive = observation ranks a rejected plan cheaper.
    pub regret_ms: f64,
    pub candidates: Vec<CandidateObs>,
    pub edges: Vec<EdgeJoin>,
}

/// Per-query bundle attached to [`HistoryRecord`] (schema v2).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CostObservation {
    pub decisions: Vec<DecisionObs>,
    /// Σ chosen `exec + startup` across decisions, scaled to the
    /// calibration reference unit. Covers cross-database stages only.
    pub pred_compute_ms: f64,
    /// Σ per-engine statement work — full statements, so the gap to
    /// `pred_compute_ms` measures the unmodeled (leaf/local) work too.
    pub obs_compute_ms: f64,
    /// Σ chosen wire terms over matched edges.
    pub pred_transfer_ms: f64,
    /// The same edges re-priced with observed encoded bytes.
    pub obs_transfer_ms: f64,
    /// Σ per-decision consult cost — equals the `ann` phase exactly.
    pub consult_ms: f64,
}

impl CostObservation {
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// Signed total regret across decisions.
    pub fn net_regret_ms(&self) -> f64 {
        self.decisions.iter().map(|d| d.regret_ms).sum()
    }

    /// Positive-only total regret (the gate series: only observed-worse
    /// choices count against the model).
    pub fn regret_ms(&self) -> f64 {
        self.decisions.iter().map(|d| d.regret_ms.max(0.0)).sum()
    }

    /// Mean |wire-time prediction error| in percent over matched edges;
    /// zero when nothing matched.
    pub fn wire_abs_err_pct(&self) -> f64 {
        let mut stats = ErrorStats::default();
        for d in &self.decisions {
            for e in d.edges.iter().filter(|e| e.matched) {
                stats.push(error_pct(e.pred_wire_ms, e.obs_wire_ms));
            }
        }
        stats.mean_abs_pct()
    }

    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"pred_compute_ms\":{},\"obs_compute_ms\":{},\"pred_transfer_ms\":{},\
             \"obs_transfer_ms\":{},\"consult_ms\":{},\"decisions\":[",
            json_number(self.pred_compute_ms),
            json_number(self.obs_compute_ms),
            json_number(self.pred_transfer_ms),
            json_number(self.obs_transfer_ms),
            json_number(self.consult_ms),
        );
        for (i, d) in self.decisions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"index\":{},\"dbms\":{},\"consult_ms\":{},\"predicted_ms\":{},\
                 \"observed_ms\":{},\"best_rejected_ms\":{},\"regret_ms\":{},\"candidates\":[",
                d.index,
                json_string(&d.dbms),
                json_number(d.consult_ms),
                json_number(d.predicted_ms),
                json_number(d.observed_ms),
                json_number(d.best_rejected_ms),
                json_number(d.regret_ms),
            );
            for (j, c) in d.candidates.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"dbms\":{},\"left_move\":{},\"right_move\":{},\"predicted_ms\":{},\
                     \"wire_left_ms\":{},\"wire_right_ms\":{},\"move_left_ms\":{},\
                     \"move_right_ms\":{},\"exec_ms\":{},\"startup_ms\":{},\
                     \"calib_factor\":{},\"chosen\":{}}}",
                    json_string(&c.dbms),
                    json_string(&c.left_move),
                    json_string(&c.right_move),
                    json_number(c.predicted_ms),
                    json_number(c.wire_left_ms),
                    json_number(c.wire_right_ms),
                    json_number(c.move_left_ms),
                    json_number(c.move_right_ms),
                    json_number(c.exec_ms),
                    json_number(c.startup_ms),
                    json_number(c.calib_factor),
                    c.chosen,
                );
            }
            out.push_str("],\"edges\":[");
            for (j, e) in d.edges.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"from\":{},\"to\":{},\"movement\":{},\"engine\":{},\"codec\":{},\
                     \"pred_rows\":{},\"pred_bytes\":{},\"pred_wire_ms\":{},\"obs_rows\":{},\
                     \"obs_bytes\":{},\"obs_encoded_bytes\":{},\"obs_wire_ms\":{},\
                     \"matched\":{}}}",
                    json_string(&e.from),
                    json_string(&e.to),
                    json_string(&e.movement),
                    json_string(&e.engine),
                    json_string(&e.codec),
                    e.pred_rows,
                    e.pred_bytes,
                    json_number(e.pred_wire_ms),
                    e.obs_rows,
                    e.obs_bytes,
                    e.obs_encoded_bytes,
                    json_number(e.obs_wire_ms),
                    e.matched,
                );
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    pub fn from_json(v: &json::Value) -> CostObservation {
        let num = |o: &json::Value, key: &str| o.get(key).and_then(json::Value::as_f64);
        let string = |o: &json::Value, key: &str| {
            o.get(key)
                .and_then(json::Value::as_str)
                .unwrap_or("")
                .to_string()
        };
        let boolean = |o: &json::Value, key: &str| match o.get(key) {
            Some(json::Value::Bool(b)) => *b,
            _ => false,
        };
        let mut decisions = Vec::new();
        if let Some(items) = v.get("decisions").and_then(json::Value::as_array) {
            for d in items {
                let mut candidates = Vec::new();
                if let Some(cands) = d.get("candidates").and_then(json::Value::as_array) {
                    for c in cands {
                        candidates.push(CandidateObs {
                            dbms: string(c, "dbms"),
                            left_move: string(c, "left_move"),
                            right_move: string(c, "right_move"),
                            predicted_ms: num(c, "predicted_ms").unwrap_or(0.0),
                            wire_left_ms: num(c, "wire_left_ms").unwrap_or(0.0),
                            wire_right_ms: num(c, "wire_right_ms").unwrap_or(0.0),
                            move_left_ms: num(c, "move_left_ms").unwrap_or(0.0),
                            move_right_ms: num(c, "move_right_ms").unwrap_or(0.0),
                            exec_ms: num(c, "exec_ms").unwrap_or(0.0),
                            startup_ms: num(c, "startup_ms").unwrap_or(0.0),
                            calib_factor: num(c, "calib_factor").unwrap_or(1.0),
                            chosen: boolean(c, "chosen"),
                        });
                    }
                }
                let mut edges = Vec::new();
                if let Some(es) = d.get("edges").and_then(json::Value::as_array) {
                    for e in es {
                        edges.push(EdgeJoin {
                            from: string(e, "from"),
                            to: string(e, "to"),
                            movement: string(e, "movement"),
                            engine: string(e, "engine"),
                            codec: string(e, "codec"),
                            pred_rows: num(e, "pred_rows").unwrap_or(0.0) as u64,
                            pred_bytes: num(e, "pred_bytes").unwrap_or(0.0) as u64,
                            pred_wire_ms: num(e, "pred_wire_ms").unwrap_or(0.0),
                            obs_rows: num(e, "obs_rows").unwrap_or(0.0) as u64,
                            obs_bytes: num(e, "obs_bytes").unwrap_or(0.0) as u64,
                            obs_encoded_bytes: num(e, "obs_encoded_bytes").unwrap_or(0.0) as u64,
                            obs_wire_ms: num(e, "obs_wire_ms").unwrap_or(0.0),
                            matched: boolean(e, "matched"),
                        });
                    }
                }
                decisions.push(DecisionObs {
                    index: num(d, "index").unwrap_or(0.0) as u64,
                    dbms: string(d, "dbms"),
                    consult_ms: num(d, "consult_ms").unwrap_or(0.0),
                    predicted_ms: num(d, "predicted_ms").unwrap_or(0.0),
                    observed_ms: num(d, "observed_ms").unwrap_or(0.0),
                    best_rejected_ms: num(d, "best_rejected_ms").unwrap_or(0.0),
                    regret_ms: num(d, "regret_ms").unwrap_or(0.0),
                    candidates,
                    edges,
                });
            }
        }
        CostObservation {
            decisions,
            pred_compute_ms: num(v, "pred_compute_ms").unwrap_or(0.0),
            obs_compute_ms: num(v, "obs_compute_ms").unwrap_or(0.0),
            pred_transfer_ms: num(v, "pred_transfer_ms").unwrap_or(0.0),
            obs_transfer_ms: num(v, "obs_transfer_ms").unwrap_or(0.0),
            consult_ms: num(v, "consult_ms").unwrap_or(0.0),
        }
    }
}

/// Signed prediction error in percent of the observed value. Both zero →
/// 0%; observed zero but a prediction made → +100% (the model predicted
/// cost where none materialized). Degenerate inputs — a NaN/∞ estimate, or
/// an observed value so small the ratio overflows — are clamped to the
/// same ±100% sentinel instead of leaking non-finite percentages into
/// calibrate/drift output (zero-byte and zero-row edges hit this path).
pub fn error_pct(predicted: f64, observed: f64) -> f64 {
    if !predicted.is_finite() || !observed.is_finite() {
        return if predicted.to_bits() == observed.to_bits() {
            0.0
        } else {
            100.0
        };
    }
    if observed.abs() < 1e-12 {
        if predicted.abs() < 1e-12 {
            0.0
        } else {
            100.0
        }
    } else {
        let pct = (predicted - observed) / observed * 100.0;
        if pct.is_finite() {
            pct
        } else {
            100.0_f64.copysign(pct)
        }
    }
}

/// Streaming error-distribution accumulator (deterministic: plain sums in
/// push order).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ErrorStats {
    pub count: u64,
    pub sum_pct: f64,
    pub sum_abs_pct: f64,
    pub min_pct: f64,
    pub max_pct: f64,
}

impl ErrorStats {
    /// Fold one percentage sample in. Non-finite samples are dropped: one
    /// degenerate edge (zero bytes, zero rows, a poisoned estimate) must
    /// not turn every mean/min/max of its group into NaN/∞.
    pub fn push(&mut self, pct: f64) {
        if !pct.is_finite() {
            return;
        }
        if self.count == 0 {
            self.min_pct = pct;
            self.max_pct = pct;
        } else {
            self.min_pct = self.min_pct.min(pct);
            self.max_pct = self.max_pct.max(pct);
        }
        self.count += 1;
        self.sum_pct += pct;
        self.sum_abs_pct += pct.abs();
    }

    pub fn mean_pct(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_pct / self.count as f64
        }
    }

    pub fn mean_abs_pct(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_abs_pct / self.count as f64
        }
    }
}

/// Aggregated calibration view over a set of history records — what
/// `repro calibrate` renders and the bench gate snapshots.
#[derive(Debug, Clone, Default)]
pub struct CalibrationSummary {
    /// Wire-time prediction error per consuming engine node.
    pub wire_by_engine: BTreeMap<String, ErrorStats>,
    /// Byte prediction error (estimated raw vs observed encoded) per
    /// dominant codec.
    pub bytes_by_codec: BTreeMap<String, ErrorStats>,
    /// Wire-time prediction error per `from->to/movement` edge shape.
    pub wire_by_shape: BTreeMap<String, ErrorStats>,
    /// Per-engine `(predicted cross-database compute, observed statement
    /// work)` in ms.
    pub compute_by_engine: BTreeMap<String, (f64, f64)>,
    pub decisions: u64,
    pub matched_edges: u64,
    pub unmatched_edges: u64,
    /// Positive-only regret total across all records.
    pub regret_ms: f64,
    /// Signed regret total.
    pub net_regret_ms: f64,
}

/// Fold the cost observations of `records` into one summary. Records
/// without cost observations (schema v1 baselines) contribute nothing.
pub fn summarize(records: &[HistoryRecord]) -> CalibrationSummary {
    let mut s = CalibrationSummary::default();
    for r in records {
        for d in &r.cost.decisions {
            s.decisions += 1;
            s.regret_ms += d.regret_ms.max(0.0);
            s.net_regret_ms += d.regret_ms;
            let chosen = d.candidates.iter().find(|c| c.chosen);
            if let Some(c) = chosen {
                let e = s.compute_by_engine.entry(d.dbms.clone()).or_default();
                e.0 += (c.exec_ms + c.startup_ms) * c.calib_factor;
            }
            for e in &d.edges {
                if !e.matched {
                    s.unmatched_edges += 1;
                    continue;
                }
                s.matched_edges += 1;
                let wire_err = error_pct(e.pred_wire_ms, e.obs_wire_ms);
                s.wire_by_engine
                    .entry(e.engine.clone())
                    .or_default()
                    .push(wire_err);
                s.wire_by_shape.entry(e.shape()).or_default().push(wire_err);
                s.bytes_by_codec
                    .entry(e.codec.clone())
                    .or_default()
                    .push(error_pct(e.pred_bytes as f64, e.obs_encoded_bytes as f64));
            }
        }
        for (engine, ms) in &r.statements {
            s.compute_by_engine.entry(engine.clone()).or_default().1 += ms;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_cost() -> CostObservation {
        CostObservation {
            decisions: vec![DecisionObs {
                index: 0,
                dbms: "hdb".to_string(),
                consult_ms: 24.0,
                predicted_ms: 100.5,
                observed_ms: 80.25,
                best_rejected_ms: 90.0,
                regret_ms: -9.75,
                candidates: vec![
                    CandidateObs {
                        dbms: "hdb".to_string(),
                        left_move: "implicit".to_string(),
                        right_move: "implicit".to_string(),
                        predicted_ms: 100.5,
                        wire_left_ms: 10.0,
                        wire_right_ms: 0.0,
                        move_left_ms: 20.0,
                        move_right_ms: 0.0,
                        exec_ms: 70.5,
                        startup_ms: 10.0,
                        calib_factor: 1.0,
                        chosen: true,
                    },
                    CandidateObs {
                        dbms: "cdb".to_string(),
                        left_move: "implicit".to_string(),
                        right_move: "explicit".to_string(),
                        predicted_ms: 90.0,
                        calib_factor: 0.5,
                        ..Default::default()
                    },
                ],
                edges: vec![EdgeJoin {
                    from: "cdb".to_string(),
                    to: "hdb".to_string(),
                    movement: "implicit".to_string(),
                    engine: "hdb".to_string(),
                    codec: "dict".to_string(),
                    pred_rows: 100,
                    pred_bytes: 5000,
                    pred_wire_ms: 10.0,
                    obs_rows: 100,
                    obs_bytes: 5000,
                    obs_encoded_bytes: 2000,
                    obs_wire_ms: 4.0,
                    matched: true,
                }],
            }],
            pred_compute_ms: 80.5,
            obs_compute_ms: 120.0,
            pred_transfer_ms: 10.0,
            obs_transfer_ms: 4.0,
            consult_ms: 24.0,
        }
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let c = sample_cost();
        let v = json::parse(&c.to_json()).unwrap();
        assert_eq!(CostObservation::from_json(&v), c);
        let empty = CostObservation::default();
        let v = json::parse(&empty.to_json()).unwrap();
        assert_eq!(CostObservation::from_json(&v), empty);
    }

    #[test]
    fn error_pct_handles_zero_observations() {
        assert_eq!(error_pct(0.0, 0.0), 0.0);
        assert_eq!(error_pct(5.0, 0.0), 100.0);
        assert!((error_pct(15.0, 10.0) - 50.0).abs() < 1e-12);
        assert!((error_pct(5.0, 10.0) + 50.0).abs() < 1e-12);
    }

    #[test]
    fn error_pct_never_returns_non_finite() {
        // Degenerate edges: poisoned estimates and near-zero observations
        // must come back as finite sentinel percentages, never NaN/∞.
        assert_eq!(error_pct(f64::NAN, 5.0), 100.0);
        assert_eq!(error_pct(5.0, f64::NAN), 100.0);
        assert_eq!(error_pct(f64::INFINITY, 5.0), 100.0);
        assert_eq!(error_pct(f64::NAN, f64::NAN), 0.0);
        assert_eq!(error_pct(f64::INFINITY, f64::INFINITY), 0.0);
        // Observed barely above the zero threshold with a huge prediction:
        // the raw ratio overflows, the guard clamps it.
        let pct = error_pct(f64::MAX, 2e-12);
        assert!(pct.is_finite());
        assert_eq!(pct, 100.0);
        let pct = error_pct(-f64::MAX, 2e-12);
        assert!(pct.is_finite());
        assert_eq!(pct, -100.0);
    }

    #[test]
    fn stats_drop_non_finite_samples() {
        let mut s = ErrorStats::default();
        s.push(f64::NAN);
        s.push(f64::INFINITY);
        s.push(f64::NEG_INFINITY);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_pct(), 0.0);
        assert_eq!(s.mean_abs_pct(), 0.0);
        s.push(40.0);
        s.push(f64::NAN); // ignored between valid samples too
        s.push(-20.0);
        assert_eq!(s.count, 2);
        assert!((s.mean_pct() - 10.0).abs() < 1e-12);
        assert!((s.mean_abs_pct() - 30.0).abs() < 1e-12);
        assert_eq!(s.min_pct, -20.0);
        assert_eq!(s.max_pct, 40.0);
    }

    #[test]
    fn summarize_keeps_zero_byte_edges_finite() {
        // A matched edge that moved zero rows and zero bytes (an empty
        // relation) must not poison the per-codec/per-shape tables.
        let mut c = sample_cost();
        c.decisions[0].edges.push(EdgeJoin {
            from: "cdb".to_string(),
            to: "vdb".to_string(),
            movement: "implicit".to_string(),
            engine: "vdb".to_string(),
            codec: "raw".to_string(),
            matched: true,
            ..Default::default()
        });
        let r = HistoryRecord {
            cost: c,
            ..Default::default()
        };
        let s = summarize(&[r]);
        assert_eq!(s.matched_edges, 2);
        for table in [&s.wire_by_engine, &s.bytes_by_codec, &s.wire_by_shape] {
            for stats in table.values() {
                assert!(stats.mean_pct().is_finite());
                assert!(stats.mean_abs_pct().is_finite());
                assert!(stats.min_pct.is_finite());
                assert!(stats.max_pct.is_finite());
            }
        }
        // The zero/zero edge lands as an exact 0% error, not NaN.
        assert_eq!(s.bytes_by_codec["raw"].mean_pct(), 0.0);
    }

    #[test]
    fn stats_track_min_max_and_means() {
        let mut s = ErrorStats::default();
        s.push(-50.0);
        s.push(150.0);
        assert_eq!(s.count, 2);
        assert!((s.mean_pct() - 50.0).abs() < 1e-12);
        assert!((s.mean_abs_pct() - 100.0).abs() < 1e-12);
        assert_eq!(s.min_pct, -50.0);
        assert_eq!(s.max_pct, 150.0);
    }

    #[test]
    fn regret_totals_split_signed_and_positive() {
        let mut c = sample_cost();
        assert_eq!(c.regret_ms(), 0.0);
        assert_eq!(c.net_regret_ms(), -9.75);
        c.decisions[0].regret_ms = 12.5;
        assert_eq!(c.regret_ms(), 12.5);
        // 150% wire error on the single matched edge: 10 pred vs 4 obs.
        assert!((c.wire_abs_err_pct() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn summarize_groups_by_engine_codec_and_shape() {
        let mut r = HistoryRecord {
            cost: sample_cost(),
            ..Default::default()
        };
        r.statements = vec![("hdb".to_string(), 120.0)];
        let s = summarize(&[r]);
        assert_eq!(s.decisions, 1);
        assert_eq!(s.matched_edges, 1);
        assert_eq!(s.unmatched_edges, 0);
        assert!(s.wire_by_engine.contains_key("hdb"));
        assert!(s.bytes_by_codec.contains_key("dict"));
        assert!(s.wire_by_shape.contains_key("cdb->hdb/implicit"));
        let (pred, obs) = s.compute_by_engine["hdb"];
        assert!((pred - 80.5).abs() < 1e-12);
        assert!((obs - 120.0).abs() < 1e-12);
        assert_eq!(s.regret_ms, 0.0);
        assert!((s.net_regret_ms + 9.75).abs() < 1e-12);
    }
}
