//! The fleet-wide metric registry: counters, gauges and log-bucketed
//! histograms with labels, updated on the **simulated clock**'s values so
//! every recorded number is deterministic — the sequential and parallel
//! executors produce bit-identical registries (scheduling-dependent
//! metrics are quarantined under the `sched.` prefix, see below).
//!
//! Determinism rules for instrumented code:
//!
//! - **counters** may be bumped from any thread: addition is commutative,
//!   so totals are order-independent;
//! - **gauges** must only be written from points where all writes to one
//!   key are serialized (per-engine gauges are written under that engine's
//!   catalog lock) or where the sequence of values is monotone (the
//!   high-water mark of a monotone sequence is order-independent);
//! - **histograms** may be observed from any thread — bucket counts, sum,
//!   min and max are all order-independent;
//! - metrics whose *value* genuinely depends on thread scheduling (e.g.
//!   scratch-pool hit counts under concurrency) live under the reserved
//!   `sched.` name prefix and are excluded from the bit-identical
//!   guarantee; [`MetricRegistry::deterministic_snapshot`] filters them.
//!   The `net.chunks` series is quarantined the same way: transport chunk
//!   counts depend on the configured `stream_chunk_rows`, which — like the
//!   executor partition count — must never leak into determinism
//!   comparisons. `net.codec.*` (wire-codec state-cache hit counts) is
//!   quarantined too: under the parallel executor two task groups can race
//!   to the first encode of a shared relation, so the *hit count* is
//!   scheduling-dependent even though the encoded bytes are not.

use crate::trace::{json_number, json_string, MetricsSnapshot};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};

/// Name prefix for scheduling-dependent metrics, excluded from the
/// sequential-vs-parallel bit-identity guarantee.
pub const SCHED_PREFIX: &str = "sched.";

/// Name prefix for transport-chunk counts, excluded from determinism
/// comparisons because they scale with the configured `stream_chunk_rows`
/// (results, ledgers, timings and every other metric stay bit-identical
/// across chunk sizes).
pub const CHUNKS_PREFIX: &str = "net.chunks";

/// Name prefix for wire-codec state-cache counters (`net.codec.dict_reuse`
/// and friends), excluded from determinism comparisons because cache-hit
/// counts depend on executor scheduling (the encoded bytes they describe
/// stay bit-identical).
pub const CODEC_PREFIX: &str = "net.codec.";

/// A log-bucketed (base-2) histogram of non-negative f64 observations.
///
/// Buckets are dyadic: observation `v` lands in the bucket whose upper
/// bound is the smallest power of two `>= v` (a dedicated bucket holds
/// `v <= 0`). Bucket counts, `count`, `sum`, `min` and `max` are all
/// order-independent, so concurrent observers always converge to the same
/// histogram; merging shard histograms is exactly equivalent to observing
/// every value into one histogram.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    /// `exponent -> count`; bucket upper bound is `2^exponent`. The
    /// non-positive bucket is stored under `i32::MIN`.
    buckets: BTreeMap<i32, u64>,
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

fn bucket_exp(v: f64) -> i32 {
    if v <= 0.0 {
        return i32::MIN;
    }
    // Smallest e with 2^e >= v.
    let e = v.log2().ceil();
    e.clamp(-64.0, 1024.0) as i32
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    pub fn observe(&mut self, v: f64) {
        *self.buckets.entry(bucket_exp(v)).or_insert(0) += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Merge another histogram into this one. Merging shards is equivalent
    /// to observing all their values into a single histogram (the `sum` of
    /// dyadic/integral observations is bit-exact; arbitrary f64 sums agree
    /// up to addition-order rounding).
    pub fn merge(&mut self, other: &Histogram) {
        for (e, c) in &other.buckets {
            *self.buckets.entry(*e).or_insert(0) += c;
        }
        if other.count > 0 {
            if self.count == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Quantile estimate `q` in `[0, 1]`: the upper bound of the first
    /// bucket whose cumulative count reaches `q * count` (clamped into
    /// `[min, max]`). Monotone in `q` by construction — cumulative counts
    /// only grow across buckets sorted by upper bound.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (e, c) in &self.buckets {
            seen += c;
            if seen >= target {
                let upper = if *e == i32::MIN {
                    0.0
                } else {
                    (*e as f64).exp2()
                };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// `(upper_bound, cumulative_count)` pairs in bucket order (Prometheus
    /// `le` semantics; the non-positive bucket reports bound 0).
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(self.buckets.len());
        let mut cum = 0u64;
        for (e, c) in &self.buckets {
            cum += c;
            let bound = if *e == i32::MIN {
                0.0
            } else {
                (*e as f64).exp2()
            };
            out.push((bound, cum));
        }
        out
    }
}

/// One named metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    Counter(f64),
    /// Last value plus the high-water mark the gauge ever reached.
    Gauge {
        value: f64,
        high_water: f64,
    },
    Histogram(Histogram),
}

/// A metric name plus rendered labels, e.g. `ddl.objects_live{engine="db1"}`.
/// Label order is the caller's order and is part of the key, so call sites
/// must be consistent (they are: every site spells its labels once).
pub fn metric_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
    out
}

/// The process- or cluster-wide metric registry.
///
/// One mutex around a `BTreeMap` keyed by rendered name+labels: every
/// update is a few string hashes and a map probe — cheap enough to stay
/// always-on (the `fig9` overhead budget is bounded in EXPERIMENTS.md).
/// `set_enabled(false)` turns every operation into a branch, for overhead
/// measurement.
#[derive(Debug, Default)]
pub struct MetricRegistry {
    enabled: AtomicBool,
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricRegistry {
    pub fn new() -> MetricRegistry {
        MetricRegistry {
            enabled: AtomicBool::new(true),
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Release);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Add to a counter (creating it at zero).
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], amount: f64) {
        if !self.is_enabled() {
            return;
        }
        let key = metric_key(name, labels);
        let mut m = self.metrics.lock();
        if let Metric::Counter(v) = m.entry(key).or_insert(Metric::Counter(0.0)) {
            *v += amount
        }
    }

    /// Set a gauge, tracking its high-water mark.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        if !self.is_enabled() {
            return;
        }
        let key = metric_key(name, labels);
        let mut m = self.metrics.lock();
        if let Metric::Gauge {
            value: v,
            high_water,
        } = m.entry(key).or_insert(Metric::Gauge {
            value,
            high_water: value,
        }) {
            *v = value;
            *high_water = high_water.max(value);
        }
    }

    /// Adjust a gauge by a delta (creating it at zero first).
    pub fn gauge_add(&self, name: &str, labels: &[(&str, &str)], delta: f64) {
        if !self.is_enabled() {
            return;
        }
        let key = metric_key(name, labels);
        let mut m = self.metrics.lock();
        if let Metric::Gauge { value, high_water } = m.entry(key).or_insert(Metric::Gauge {
            value: 0.0,
            high_water: 0.0,
        }) {
            *value += delta;
            *high_water = high_water.max(*value);
        }
    }

    /// Observe a value into a histogram.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        if !self.is_enabled() {
            return;
        }
        let key = metric_key(name, labels);
        let mut m = self.metrics.lock();
        if let Metric::Histogram(h) = m.entry(key).or_insert(Metric::Histogram(Histogram::new())) {
            h.observe(value)
        }
    }

    /// Read one metric by exact key.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<Metric> {
        self.metrics.lock().get(&metric_key(name, labels)).cloned()
    }

    /// Current counter / gauge value (0 when absent).
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        match self.get(name, labels) {
            Some(Metric::Counter(v)) => v,
            Some(Metric::Gauge { value, .. }) => value,
            Some(Metric::Histogram(h)) => h.sum,
            None => 0.0,
        }
    }

    /// High-water mark of a gauge (0 when absent or not a gauge).
    pub fn high_water(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        match self.get(name, labels) {
            Some(Metric::Gauge { high_water, .. }) => high_water,
            _ => 0.0,
        }
    }

    /// Flatten the registry into a diffable [`MetricsSnapshot`]: counters
    /// and gauges keep their key; a gauge additionally exports `<key>.hwm`;
    /// a histogram exports `.count`, `.sum`, `.min`, `.max`, `.p50`,
    /// `.p95`, `.p99`.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.metrics.lock();
        let mut counters = BTreeMap::new();
        for (k, metric) in m.iter() {
            match metric {
                Metric::Counter(v) => {
                    counters.insert(k.clone(), *v);
                }
                Metric::Gauge { value, high_water } => {
                    counters.insert(k.clone(), *value);
                    counters.insert(format!("{k}.hwm"), *high_water);
                }
                Metric::Histogram(h) => {
                    counters.insert(format!("{k}.count"), h.count as f64);
                    counters.insert(format!("{k}.sum"), h.sum);
                    counters.insert(format!("{k}.min"), h.min);
                    counters.insert(format!("{k}.max"), h.max);
                    counters.insert(format!("{k}.p50"), h.quantile(0.50));
                    counters.insert(format!("{k}.p95"), h.quantile(0.95));
                    counters.insert(format!("{k}.p99"), h.quantile(0.99));
                }
            }
        }
        MetricsSnapshot { counters }
    }

    /// [`MetricRegistry::snapshot`] restricted to deterministic metrics:
    /// everything outside the `sched.` prefix, the chunk-size-dependent
    /// `net.chunks` series, and the scheduling-dependent `net.codec.*`
    /// cache-hit counters. This is the set the sequential-vs-parallel and
    /// chunk-size bit-identity tests compare.
    pub fn deterministic_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.snapshot();
        snap.counters.retain(|k, _| {
            !k.starts_with(SCHED_PREFIX)
                && !k.starts_with(CHUNKS_PREFIX)
                && !k.starts_with(CODEC_PREFIX)
        });
        snap
    }

    /// Prometheus text exposition (metric names sanitized `.`/`-` → `_`;
    /// histograms emit `_bucket{le=...}`, `_sum` and `_count` series).
    pub fn render_prometheus(&self) -> String {
        let m = self.metrics.lock();
        let mut out = String::new();
        for (key, metric) in m.iter() {
            let (name, labels) = split_key(key);
            let pname = sanitize(name);
            match metric {
                Metric::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {pname} counter");
                    let _ = writeln!(out, "{pname}{} {}", brace(&labels), json_number(*v));
                }
                Metric::Gauge { value, high_water } => {
                    let _ = writeln!(out, "# TYPE {pname} gauge");
                    let _ = writeln!(out, "{pname}{} {}", brace(&labels), json_number(*value));
                    let _ = writeln!(
                        out,
                        "{pname}_high_water{} {}",
                        brace(&labels),
                        json_number(*high_water)
                    );
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {pname} histogram");
                    for (bound, cum) in h.cumulative_buckets() {
                        let mut ls = labels.clone();
                        ls.push(("le".to_string(), json_number(bound)));
                        let _ = writeln!(out, "{pname}_bucket{} {cum}", brace(&ls));
                    }
                    let mut ls = labels.clone();
                    ls.push(("le".to_string(), "+Inf".to_string()));
                    let _ = writeln!(out, "{pname}_bucket{} {}", brace(&ls), h.count);
                    let _ = writeln!(out, "{pname}_sum{} {}", brace(&labels), json_number(h.sum));
                    let _ = writeln!(out, "{pname}_count{} {}", brace(&labels), h.count);
                }
            }
        }
        out
    }

    /// Number of distinct metric keys.
    pub fn len(&self) -> usize {
        self.metrics.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.metrics.lock().is_empty()
    }

    pub fn clear(&self) {
        self.metrics.lock().clear();
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Split a rendered key back into `(name, labels)`.
fn split_key(key: &str) -> (&str, Vec<(String, String)>) {
    let Some(open) = key.find('{') else {
        return (key, Vec::new());
    };
    let name = &key[..open];
    let body = key[open + 1..].trim_end_matches('}');
    let mut labels = Vec::new();
    for part in body.split(',') {
        if let Some((k, v)) = part.split_once('=') {
            labels.push((k.to_string(), v.trim_matches('"').to_string()));
        }
    }
    (name, labels)
}

fn brace(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // `le` bounds are numbers rendered as label strings.
        let _ = write!(out, "{k}={}", json_string(v));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_histogram_roundtrip() {
        let r = MetricRegistry::new();
        r.counter_add("c", &[], 2.0);
        r.counter_add("c", &[], 3.0);
        assert_eq!(r.value("c", &[]), 5.0);
        r.gauge_set("g", &[("engine", "db1")], 4.0);
        r.gauge_set("g", &[("engine", "db1")], 1.0);
        assert_eq!(r.value("g", &[("engine", "db1")]), 1.0);
        assert_eq!(r.high_water("g", &[("engine", "db1")]), 4.0);
        r.gauge_add("g", &[("engine", "db1")], 6.0);
        assert_eq!(r.high_water("g", &[("engine", "db1")]), 7.0);
        for v in [1.0, 2.0, 4.0, 100.0] {
            r.observe("h", &[("phase", "exec")], v);
        }
        let Some(Metric::Histogram(h)) = r.get("h", &[("phase", "exec")]) else {
            panic!("histogram missing");
        };
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 107.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = MetricRegistry::new();
        r.set_enabled(false);
        r.counter_add("c", &[], 1.0);
        r.gauge_set("g", &[], 1.0);
        r.observe("h", &[], 1.0);
        assert!(r.is_empty());
    }

    #[test]
    fn histogram_quantiles_monotone_and_bounded() {
        let mut h = Histogram::new();
        for v in [0.5, 1.0, 3.0, 7.0, 8.0, 120.0] {
            h.observe(v);
        }
        let mut prev = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            assert!(v >= h.min && v <= h.max);
            prev = v;
        }
        assert_eq!(Histogram::new().quantile(0.5), 0.0);
    }

    #[test]
    fn histogram_merge_equals_single() {
        let values = [0.0, 0.25, 1.0, 2.0, 16.0, 16.0, 1024.0];
        let mut single = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, v) in values.iter().enumerate() {
            single.observe(*v);
            if i % 2 == 0 {
                a.observe(*v)
            } else {
                b.observe(*v)
            }
        }
        a.merge(&b);
        assert_eq!(a, single);
    }

    #[test]
    fn snapshot_flattens_and_filters() {
        let r = MetricRegistry::new();
        r.counter_add("x", &[], 1.0);
        r.gauge_set("g", &[], 2.0);
        r.observe("h", &[], 4.0);
        r.counter_add("sched.pool", &[], 9.0);
        r.counter_add("net.chunks", &[("purpose", "inter_dbms_pipeline")], 5.0);
        r.counter_add("net.codec.dict_reuse", &[], 3.0);
        r.counter_add("net.encoded_bytes", &[], 11.0);
        let s = r.snapshot();
        assert_eq!(s.get("x"), 1.0);
        assert_eq!(s.get("g.hwm"), 2.0);
        assert_eq!(s.get("h.count"), 1.0);
        assert_eq!(s.get("h.p50"), 4.0);
        assert_eq!(s.get("sched.pool"), 9.0);
        let d = r.deterministic_snapshot();
        assert_eq!(d.get("sched.pool"), 0.0);
        assert!(!d.counters.contains_key("sched.pool"));
        // Chunk counts scale with `stream_chunk_rows` — quarantined; the
        // encoded byte series is chunk-invariant and stays. Codec
        // cache-hit counts are scheduling-dependent — quarantined too.
        assert!(!d.counters.keys().any(|k| k.starts_with(CHUNKS_PREFIX)));
        assert!(!d.counters.keys().any(|k| k.starts_with(CODEC_PREFIX)));
        assert_eq!(s.get("net.codec.dict_reuse"), 3.0);
        assert_eq!(d.get("net.encoded_bytes"), 11.0);
    }

    #[test]
    fn prometheus_render_shape() {
        let r = MetricRegistry::new();
        r.counter_add("net.bytes", &[("movement", "implicit")], 10.0);
        r.gauge_set("ddl.objects_live", &[("engine", "db1")], 3.0);
        r.observe("latency_ms", &[("query", "Q3")], 7.5);
        let p = r.render_prometheus();
        assert!(p.contains("# TYPE net_bytes counter"), "{p}");
        assert!(p.contains("net_bytes{movement=\"implicit\"} 10"), "{p}");
        assert!(p.contains("ddl_objects_live{engine=\"db1\"} 3"), "{p}");
        assert!(
            p.contains("ddl_objects_live_high_water{engine=\"db1\"} 3"),
            "{p}"
        );
        assert!(
            p.contains("latency_ms_bucket{query=\"Q3\",le=\"8\"} 1"),
            "{p}"
        );
        assert!(
            p.contains("latency_ms_bucket{query=\"Q3\",le=\"+Inf\"} 1"),
            "{p}"
        );
        assert!(p.contains("latency_ms_count{query=\"Q3\"} 1"), "{p}");
    }

    #[test]
    fn metric_key_rendering() {
        assert_eq!(metric_key("a", &[]), "a");
        assert_eq!(
            metric_key("a", &[("x", "1"), ("y", "2")]),
            "a{x=\"1\",y=\"2\"}"
        );
    }
}
