//! The fleet telemetry handle: one [`MetricRegistry`] plus one
//! [`EventLog`], shared as an `Arc` by everything observing one federation.
//!
//! Ownership model: every [`Cluster`](../../xdb_engine) carries an
//! `Arc<Telemetry>` and hands it to its engines, its ledger, and the
//! `GlobalCatalog` discovered over it. By default that handle is the
//! **process-global** telemetry (so the `repro` binary can export one
//! merged event log / registry without plumbing), but tests that assert on
//! absolute metric values attach a fresh `Telemetry` per cluster so
//! concurrently-running tests cannot pollute each other — the same lesson
//! the consult-cache accounting learned in an earlier PR.

use crate::event::EventLog;
use crate::history::HistorySink;
use crate::metrics::MetricRegistry;
use std::sync::{Arc, OnceLock};

/// Metrics + events for one federation (or the whole process).
#[derive(Debug, Default)]
pub struct Telemetry {
    pub metrics: MetricRegistry,
    pub events: EventLog,
    /// The query history store — disabled until `repro --history dir/`
    /// (or a test) turns it on.
    pub history: HistorySink,
}

impl Telemetry {
    /// A fresh, isolated telemetry handle.
    pub fn new_handle() -> Arc<Telemetry> {
        Arc::new(Telemetry {
            metrics: MetricRegistry::new(),
            events: EventLog::default(),
            history: HistorySink::default(),
        })
    }

    /// Enable/disable both sinks at once (overhead measurement switch).
    pub fn set_enabled(&self, on: bool) {
        self.metrics.set_enabled(on);
        self.events.set_min_level(if on {
            crate::event::Level::Info
        } else {
            crate::event::Level::Error
        });
    }

    /// Drop all recorded metrics, events, and in-memory history records.
    pub fn clear(&self) {
        self.metrics.clear();
        self.events.clear();
        self.history.clear();
    }
}

/// The process-global telemetry: the default handle every cluster starts
/// with, and the one `repro --log` / `--metrics` export.
pub fn global() -> &'static Arc<Telemetry> {
    static GLOBAL: OnceLock<Arc<Telemetry>> = OnceLock::new();
    GLOBAL.get_or_init(Telemetry::new_handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Level;

    #[test]
    fn handles_are_isolated() {
        let a = Telemetry::new_handle();
        let b = Telemetry::new_handle();
        a.metrics.counter_add("x", &[], 1.0);
        assert_eq!(b.metrics.value("x", &[]), 0.0);
        assert_eq!(a.metrics.value("x", &[]), 1.0);
    }

    #[test]
    fn global_is_shared() {
        let g1 = global();
        let g2 = global();
        assert!(Arc::ptr_eq(g1, g2));
    }

    #[test]
    fn set_enabled_toggles_both_sinks() {
        let t = Telemetry::new_handle();
        t.set_enabled(false);
        t.metrics.counter_add("x", &[], 1.0);
        t.events.log(Level::Info, "t", None, 0.0, "m", &[]);
        assert!(t.metrics.is_empty());
        assert!(t.events.is_empty());
        t.set_enabled(true);
        t.events.log(Level::Info, "t", None, 0.0, "m", &[]);
        assert_eq!(t.events.len(), 1);
    }
}
