//! A minimal recursive-descent JSON reader.
//!
//! The package registry is unreachable from the build environment, so the
//! repository hand-rolls the few dozen lines needed to *validate* emitted
//! Chrome-trace files (tests and `repro --check-trace`) instead of pulling
//! in serde. This is a reader for trusted, machine-generated input; it
//! favours clarity over speed.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    /// Key/value pairs in document order (duplicates kept).
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}, "f": ""}"#)
                .unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("f").unwrap().as_str(), Some(""));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""éA""#).unwrap();
        assert_eq!(v.as_str(), Some("éA"));
    }
}
