//! # xdb-obs
//!
//! Structured tracing and metrics for the XDB reproduction.
//!
//! Every query submission produces a [`QueryTrace`]: a tree of hierarchical
//! [`Span`]s (query → phase → task → operator / DDL / transfer / consult)
//! plus a flat counter map. Timestamps are **simulated milliseconds** — the
//! same deterministic clock the timing model in `xdb-net` composes — so
//! traces are bit-identical across the parallel and sequential executors
//! and across repeated runs.
//!
//! Three sinks, no external dependencies:
//!
//! 1. [`QueryTrace::to_chrome_json`] — Chrome `trace_event` JSON for
//!    `chrome://tracing` / Perfetto, one lane per engine node;
//! 2. [`QueryTrace::render_text`] — an `EXPLAIN ANALYZE`-style tree report;
//! 3. [`QueryTrace::metrics`] — a diffable [`MetricsSnapshot`] for the
//!    bench harness.
//!
//! The [`json`] module is a minimal JSON reader used to validate emitted
//! trace files in tests and in the `repro --check-trace` smoke mode.
//!
//! Beyond per-query traces, the crate hosts the **fleet telemetry** layer:
//! a [`MetricRegistry`] (counters, gauges with high-water marks, and
//! log-bucketed [`Histogram`]s, all labeled), a structured [`EventLog`]
//! (leveled, query-correlated, ring-buffered, JSON-lines export), and the
//! [`Telemetry`] handle that bundles both — attached per cluster, with a
//! process-global default in [`telemetry::global`]. Everything is recorded
//! on the simulated clock, so telemetry is deterministic too (see
//! `metrics` module docs for the exact rules).
//!
//! Two analysis layers sit on top: the [`history`] module persists one
//! [`HistoryRecord`] per query run (plan fingerprint, timings, wire
//! ratios — the learned-cost-model feed), and the [`critical`] module
//! computes the critical path through a finished trace, attributing
//! end-to-end latency to compute / transfer / consult / DDL per engine
//! node.

pub mod collect;
pub mod costmodel;
pub mod critical;
pub mod event;
pub mod history;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod span;
pub mod telemetry;
pub mod trace;

pub use collect::{disabled_collector, TraceCollector, TraceCtx};
pub use costmodel::{
    error_pct, summarize, CalibrationSummary, CandidateObs, CostObservation, DecisionObs, EdgeJoin,
    ErrorStats,
};
pub use critical::{critical_path, critical_paths, CritCategory, CriticalPath, CriticalStep};
pub use event::{Event, EventLog, Level};
pub use history::{HistoryRecord, HistorySink, HISTORY_SCHEMA_VERSION};
pub use metrics::{Histogram, Metric, MetricRegistry};
pub use profile::{ExecProfile, OpStat};
pub use span::{Span, SpanId, SpanKind};
pub use telemetry::Telemetry;
pub use trace::{MetricsSnapshot, QueryTrace};
