//! # xdb-obs
//!
//! Structured tracing and metrics for the XDB reproduction.
//!
//! Every query submission produces a [`QueryTrace`]: a tree of hierarchical
//! [`Span`]s (query → phase → task → operator / DDL / transfer / consult)
//! plus a flat counter map. Timestamps are **simulated milliseconds** — the
//! same deterministic clock the timing model in `xdb-net` composes — so
//! traces are bit-identical across the parallel and sequential executors
//! and across repeated runs.
//!
//! Three sinks, no external dependencies:
//!
//! 1. [`QueryTrace::to_chrome_json`] — Chrome `trace_event` JSON for
//!    `chrome://tracing` / Perfetto, one lane per engine node;
//! 2. [`QueryTrace::render_text`] — an `EXPLAIN ANALYZE`-style tree report;
//! 3. [`QueryTrace::metrics`] — a diffable [`MetricsSnapshot`] for the
//!    bench harness.
//!
//! The [`json`] module is a minimal JSON reader used to validate emitted
//! trace files in tests and in the `repro --check-trace` smoke mode.

pub mod collect;
pub mod json;
pub mod profile;
pub mod span;
pub mod trace;

pub use collect::{disabled_collector, TraceCollector, TraceCtx};
pub use profile::{ExecProfile, OpStat};
pub use span::{Span, SpanId, SpanKind};
pub use trace::{MetricsSnapshot, QueryTrace};
