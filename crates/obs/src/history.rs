//! The query history store: an append-only JSON-lines record of every
//! query run — exactly the series a feedback-driven cost model consumes.
//!
//! Each [`HistoryRecord`] captures one submission: a canonical **plan
//! fingerprint** (stable hash of the annotated task DAG — placements,
//! movement choices, fragment keys — computed by `xdb-core`), per-phase
//! timings, the critical-path attribution, per-edge wire observations
//! (raw vs encoded bytes and the per-codec split), per-engine statement
//! work, and consultation-cache hit rates. Everything is taken off the
//! simulated clock and script-order-deterministic state, so records are
//! bit-identical between the sequential and parallel executors and across
//! stream-chunk sizes (the process-global query id is the one field
//! comparison tests normalize, exactly as they do for traces).
//!
//! The [`HistorySink`] lives on [`crate::Telemetry`] and is **disabled by
//! default** — recording costs nothing until `repro --history dir/` (or
//! `XDB_HISTORY_DIR`) turns it on, after which every record is kept in
//! memory and appended to `<dir>/history.jsonl`.

use crate::json;
use crate::trace::{json_number, json_string};
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

/// Version of the record layout; the drift detector and bench gate reject
/// *newer* baselines instead of mis-parsing them. Older versions down to
/// [`HISTORY_MIN_SCHEMA_VERSION`] still parse: a v1 record is a v2 record
/// with an empty cost observation.
///
/// v1 → v2: added the `cost` object (the cost-model observatory's
/// predicted-vs-observed decision ledger, see [`crate::costmodel`]).
///
/// v2 → v3: added the `learned_costs` marker — whether the run was priced
/// through the learned cost profiles (feedback-driven costing) or the
/// static Eq. 1–3 model. Absent in v1/v2 records → `false`, so drift's
/// plan-flip-rate tolerance only engages when *both* sides of a
/// comparison are learned-cost histories.
pub const HISTORY_SCHEMA_VERSION: u64 = 3;

/// Oldest record layout the parser still accepts.
pub const HISTORY_MIN_SCHEMA_VERSION: u64 = 1;

/// File name of the JSON-lines store inside a history directory.
pub const HISTORY_FILE: &str = "history.jsonl";

/// One observed wire edge of a query run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EdgeObs {
    pub from: String,
    pub to: String,
    /// [`Purpose::label`](../../xdb_net) of the transfer.
    pub purpose: String,
    /// Raw (pre-codec) payload bytes.
    pub bytes: u64,
    /// Post-codec bytes — `encoded/bytes` is the observed wire ratio the
    /// cost model's Eq. 1–3 terms will calibrate against.
    pub encoded_bytes: u64,
    pub rows: u64,
    /// Per-codec byte split of the encoded payload (`dict`, `forpack`,
    /// `rle`, `raw`), deterministic per edge.
    pub codecs: Vec<(String, u64)>,
}

/// One query run, as persisted to the history store.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistoryRecord {
    pub schema_version: u64,
    /// Workload label active at record time (e.g. `Q3`); empty for ad-hoc
    /// submissions. Display only — drift groups by `sql_fnv`.
    pub label: String,
    /// Deployment that produced the run (currently always `xdb`).
    pub deployment: String,
    /// Stable FNV-1a hash of the SQL text (hex) — the grouping key.
    pub sql_fnv: String,
    /// Canonical plan fingerprint: stable hash of the annotated task DAG
    /// (placements, movement choices, fragment keys). A changed
    /// fingerprint for the same `sql_fnv` is a plan flip.
    pub fingerprint: String,
    /// Process-global correlation id. Informational only: it varies
    /// between processes, so drift comparison ignores it.
    pub query_id: u64,
    pub total_ms: f64,
    /// `(phase name, simulated ms)` in pipeline order.
    pub phases: Vec<(String, f64)>,
    pub consult_hits: u64,
    pub consult_misses: u64,
    /// Critical-path length in spans.
    pub crit_spans: u64,
    /// Critical-path attribution: `(category, location, simulated ms)`,
    /// largest first.
    pub critical: Vec<(String, String, f64)>,
    pub edges: Vec<EdgeObs>,
    /// Per-engine statement work (`engine -> simulated work ms`).
    pub statements: Vec<(String, f64)>,
    /// Cost-model observatory bundle (schema v2): predicted-vs-observed
    /// accounting per placement decision. Empty for v1 records and for
    /// runs without cross-database decisions.
    pub cost: crate::costmodel::CostObservation,
    /// Whether the run was priced through learned cost profiles (schema
    /// v3); `false` for v1/v2 records and static-cost runs.
    pub learned_costs: bool,
}

impl HistoryRecord {
    /// Share of consult probes answered from cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.consult_hits + self.consult_misses;
        if total == 0 {
            0.0
        } else {
            self.consult_hits as f64 / total as f64
        }
    }

    /// Per-category critical-path totals, in ms.
    pub fn critical_by_category(&self) -> Vec<(String, f64)> {
        let mut out: Vec<(String, f64)> = Vec::new();
        for (cat, _, ms) in &self.critical {
            match out.iter_mut().find(|(c, _)| c == cat) {
                Some((_, v)) => *v += ms,
                None => out.push((cat.clone(), *ms)),
            }
        }
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        out
    }

    /// One JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\"schema_version\":{},\"label\":{},\"deployment\":{},\"sql_fnv\":{},\
             \"fingerprint\":{},\"query_id\":{},\"total_ms\":{}",
            self.schema_version,
            json_string(&self.label),
            json_string(&self.deployment),
            json_string(&self.sql_fnv),
            json_string(&self.fingerprint),
            self.query_id,
            json_number(self.total_ms),
        );
        out.push_str(",\"phases\":{");
        for (i, (name, ms)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(name), json_number(*ms));
        }
        let _ = write!(
            out,
            "}},\"consult_hits\":{},\"consult_misses\":{},\"crit_spans\":{}",
            self.consult_hits, self.consult_misses, self.crit_spans
        );
        out.push_str(",\"critical\":[");
        for (i, (cat, loc, ms)) in self.critical.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"category\":{},\"location\":{},\"ms\":{}}}",
                json_string(cat),
                json_string(loc),
                json_number(*ms)
            );
        }
        out.push_str("],\"edges\":[");
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"from\":{},\"to\":{},\"purpose\":{},\"bytes\":{},\
                 \"encoded_bytes\":{},\"rows\":{},\"codecs\":{{",
                json_string(&e.from),
                json_string(&e.to),
                json_string(&e.purpose),
                e.bytes,
                e.encoded_bytes,
                e.rows
            );
            for (j, (codec, bytes)) in e.codecs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_string(codec), bytes);
            }
            out.push_str("}}");
        }
        out.push_str("],\"statements\":{");
        for (i, (engine, ms)) in self.statements.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(engine), json_number(*ms));
        }
        out.push_str("},\"cost\":");
        out.push_str(&self.cost.to_json());
        let _ = write!(out, ",\"learned_costs\":{}", self.learned_costs);
        out.push('}');
        out
    }

    /// Parse one record back out of its JSON form.
    pub fn from_json(v: &json::Value) -> Result<HistoryRecord, String> {
        let num = |key: &str| {
            v.get(key)
                .and_then(json::Value::as_f64)
                .ok_or_else(|| format!("history record missing numeric {key:?}"))
        };
        let string = |key: &str| {
            v.get(key)
                .and_then(json::Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("history record missing string {key:?}"))
        };
        let pairs = |key: &str| -> Result<Vec<(String, f64)>, String> {
            match v.get(key) {
                Some(json::Value::Object(items)) => items
                    .iter()
                    .map(|(k, val)| {
                        val.as_f64()
                            .map(|n| (k.clone(), n))
                            .ok_or_else(|| format!("{key:?} entry {k:?} is not a number"))
                    })
                    .collect(),
                _ => Err(format!("history record missing object {key:?}")),
            }
        };
        let mut critical = Vec::new();
        if let Some(items) = v.get("critical").and_then(json::Value::as_array) {
            for c in items {
                critical.push((
                    c.get("category")
                        .and_then(json::Value::as_str)
                        .unwrap_or("")
                        .to_string(),
                    c.get("location")
                        .and_then(json::Value::as_str)
                        .unwrap_or("")
                        .to_string(),
                    c.get("ms").and_then(json::Value::as_f64).unwrap_or(0.0),
                ));
            }
        }
        let mut edges = Vec::new();
        if let Some(items) = v.get("edges").and_then(json::Value::as_array) {
            for e in items {
                let field = |key: &str| {
                    e.get(key)
                        .and_then(json::Value::as_str)
                        .unwrap_or("")
                        .to_string()
                };
                let n = |key: &str| e.get(key).and_then(json::Value::as_f64).unwrap_or(0.0) as u64;
                let codecs = match e.get("codecs") {
                    Some(json::Value::Object(items)) => items
                        .iter()
                        .filter_map(|(k, val)| val.as_f64().map(|b| (k.clone(), b as u64)))
                        .collect(),
                    _ => Vec::new(),
                };
                edges.push(EdgeObs {
                    from: field("from"),
                    to: field("to"),
                    purpose: field("purpose"),
                    bytes: n("bytes"),
                    encoded_bytes: n("encoded_bytes"),
                    rows: n("rows"),
                    codecs,
                });
            }
        }
        Ok(HistoryRecord {
            schema_version: num("schema_version")? as u64,
            label: string("label")?,
            deployment: string("deployment")?,
            sql_fnv: string("sql_fnv")?,
            fingerprint: string("fingerprint")?,
            query_id: num("query_id")? as u64,
            total_ms: num("total_ms")?,
            phases: pairs("phases")?,
            consult_hits: num("consult_hits")? as u64,
            consult_misses: num("consult_misses")? as u64,
            crit_spans: num("crit_spans")? as u64,
            critical,
            edges,
            statements: pairs("statements")?,
            // Absent in v1 records — parse to the empty observation.
            cost: v
                .get("cost")
                .map(crate::costmodel::CostObservation::from_json)
                .unwrap_or_default(),
            // Absent in v1/v2 records — those predate learned costing.
            learned_costs: matches!(v.get("learned_costs"), Some(json::Value::Bool(true))),
        })
    }
}

/// Parse a JSON-lines history export. Records must carry a supported
/// schema version ([`HISTORY_MIN_SCHEMA_VERSION`] ..=
/// [`HISTORY_SCHEMA_VERSION`]) — anything newer or older is an error, not
/// a silent mis-parse. v1 baselines stay readable so pre-observatory
/// drift baselines keep working.
pub fn parse_history_jsonl(text: &str) -> Result<Vec<HistoryRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("history line {}: {e}", i + 1))?;
        let record =
            HistoryRecord::from_json(&v).map_err(|e| format!("history line {}: {e}", i + 1))?;
        if record.schema_version < HISTORY_MIN_SCHEMA_VERSION
            || record.schema_version > HISTORY_SCHEMA_VERSION
        {
            return Err(format!(
                "history line {}: schema_version {} (this build supports {}..={})",
                i + 1,
                record.schema_version,
                HISTORY_MIN_SCHEMA_VERSION,
                HISTORY_SCHEMA_VERSION
            ));
        }
        out.push(record);
    }
    Ok(out)
}

/// The append-only history sink attached to [`crate::Telemetry`].
#[derive(Debug, Default)]
pub struct HistorySink {
    enabled: AtomicBool,
    inner: Mutex<SinkInner>,
}

#[derive(Debug, Default)]
struct SinkInner {
    dir: Option<PathBuf>,
    label: String,
    records: Vec<HistoryRecord>,
}

impl HistorySink {
    /// Cheap check the recording path takes before building a record.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Record in memory only (tests, in-process drift comparison).
    pub fn enable_memory(&self) {
        self.inner.lock().dir = None;
        self.enabled.store(true, Ordering::Release);
    }

    /// Record in memory *and* append each record to `<dir>/history.jsonl`
    /// (the directory is created if missing).
    pub fn enable_dir(&self, dir: impl AsRef<Path>) -> std::io::Result<()> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        self.inner.lock().dir = Some(dir);
        self.enabled.store(true, Ordering::Release);
        Ok(())
    }

    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
        self.inner.lock().dir = None;
    }

    /// Set the workload label stamped onto subsequent records.
    pub fn set_label(&self, label: &str) {
        self.inner.lock().label = label.to_string();
    }

    pub fn label(&self) -> String {
        self.inner.lock().label.clone()
    }

    /// Append one record (no-op while disabled). File-append errors are
    /// reported to stderr rather than failing the query.
    pub fn append(&self, record: HistoryRecord) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock();
        if let Some(dir) = &inner.dir {
            use std::io::Write as _;
            let path = dir.join(HISTORY_FILE);
            let written = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| writeln!(f, "{}", record.to_json()));
            if let Err(e) = written {
                eprintln!("history: cannot append to {}: {e}", path.display());
            }
        }
        inner.records.push(record);
    }

    /// All records kept in memory, oldest first.
    pub fn records(&self) -> Vec<HistoryRecord> {
        self.inner.lock().records.clone()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().records.is_empty()
    }

    /// Drop the in-memory records (the on-disk store is append-only and
    /// untouched).
    pub fn clear(&self) {
        self.inner.lock().records.clear();
    }

    /// JSON-lines export of the in-memory records.
    pub fn to_jsonl(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::new();
        for r in &inner.records {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }
}

/// Read `<dir>/history.jsonl` back into records.
pub fn load_history_dir(dir: impl AsRef<Path>) -> Result<Vec<HistoryRecord>, String> {
    let path = dir.as_ref().join(HISTORY_FILE);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_history_jsonl(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HistoryRecord {
        HistoryRecord {
            schema_version: HISTORY_SCHEMA_VERSION,
            label: "Q3".to_string(),
            deployment: "xdb".to_string(),
            sql_fnv: "00fe12ab34cd56ef".to_string(),
            fingerprint: "0123456789abcdef".to_string(),
            query_id: 42,
            total_ms: 123.456,
            phases: vec![
                ("prep".to_string(), 15.0),
                ("lopt".to_string(), 10.0),
                ("ann".to_string(), 30.0),
                ("exec".to_string(), 68.456),
            ],
            consult_hits: 3,
            consult_misses: 1,
            crit_spans: 7,
            critical: vec![
                ("transfer".to_string(), "cdb->hdb".to_string(), 61.0),
                ("compute".to_string(), "hdb".to_string(), 40.0),
                ("transfer".to_string(), "vdb->hdb".to_string(), 12.5),
            ],
            edges: vec![EdgeObs {
                from: "cdb".to_string(),
                to: "hdb".to_string(),
                purpose: "inter_dbms_pipeline".to_string(),
                bytes: 1000,
                encoded_bytes: 400,
                rows: 10,
                codecs: vec![("dict".to_string(), 300), ("raw".to_string(), 100)],
            }],
            statements: vec![("cdb".to_string(), 12.5), ("hdb".to_string(), 30.25)],
            cost: crate::costmodel::CostObservation {
                decisions: vec![crate::costmodel::DecisionObs {
                    index: 0,
                    dbms: "hdb".to_string(),
                    consult_ms: 24.0,
                    predicted_ms: 61.5,
                    observed_ms: 55.25,
                    best_rejected_ms: 70.0,
                    regret_ms: -14.75,
                    candidates: vec![crate::costmodel::CandidateObs {
                        dbms: "hdb".to_string(),
                        left_move: "implicit".to_string(),
                        right_move: "implicit".to_string(),
                        predicted_ms: 61.5,
                        calib_factor: 1.0,
                        chosen: true,
                        ..Default::default()
                    }],
                    edges: vec![crate::costmodel::EdgeJoin {
                        from: "cdb".to_string(),
                        to: "hdb".to_string(),
                        movement: "implicit".to_string(),
                        engine: "hdb".to_string(),
                        codec: "dict".to_string(),
                        pred_rows: 10,
                        pred_bytes: 1000,
                        pred_wire_ms: 8.0,
                        obs_rows: 10,
                        obs_bytes: 1000,
                        obs_encoded_bytes: 400,
                        obs_wire_ms: 3.2,
                        matched: true,
                    }],
                }],
                pred_compute_ms: 30.0,
                obs_compute_ms: 42.75,
                pred_transfer_ms: 8.0,
                obs_transfer_ms: 3.2,
                consult_ms: 24.0,
            },
            learned_costs: true,
        }
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let r = sample();
        let v = json::parse(&r.to_json()).unwrap();
        let back = HistoryRecord::from_json(&v).unwrap();
        assert_eq!(back, r);
        assert!((r.cache_hit_rate() - 0.75).abs() < 1e-12);
        let cats = r.critical_by_category();
        assert_eq!(cats[0], ("transfer".to_string(), 73.5));
    }

    #[test]
    fn jsonl_rejects_newer_schema_version() {
        let mut r = sample();
        let ok = parse_history_jsonl(&format!("{}\n", r.to_json())).unwrap();
        assert_eq!(ok.len(), 1);
        r.schema_version = HISTORY_SCHEMA_VERSION + 1;
        let err = parse_history_jsonl(&r.to_json()).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
        r.schema_version = HISTORY_MIN_SCHEMA_VERSION - 1;
        let err = parse_history_jsonl(&r.to_json()).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
        assert!(parse_history_jsonl("not json").is_err());
    }

    #[test]
    fn jsonl_accepts_v1_records_without_cost_object() {
        // A pre-observatory record: schema_version 1, no "cost" key. It
        // must parse (old drift baselines stay usable) with an empty cost
        // observation.
        let v1 = r#"{"schema_version":1,"label":"Q3","deployment":"xdb",
            "sql_fnv":"00fe12ab34cd56ef","fingerprint":"0123456789abcdef",
            "query_id":7,"total_ms":10.5,"phases":{"prep":1.0,"exec":9.5},
            "consult_hits":0,"consult_misses":2,"crit_spans":3,
            "critical":[{"category":"compute","location":"cdb","ms":9.0}],
            "edges":[{"from":"cdb","to":"hdb","purpose":"inter_dbms_pipeline",
            "bytes":100,"encoded_bytes":40,"rows":2,"codecs":{"raw":40}}],
            "statements":{"cdb":9.0}}"#
            .replace('\n', "");
        let parsed = parse_history_jsonl(&v1).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].schema_version, 1);
        assert!(parsed[0].cost.is_empty());
        assert!(!parsed[0].learned_costs);
        assert_eq!(parsed[0].edges.len(), 1);
    }

    #[test]
    fn jsonl_accepts_v2_records_without_learned_marker() {
        // A v2 (pre-learned-profiles) record: carries a cost object but no
        // "learned_costs" key. It must parse with the marker false, which
        // is what keeps drift's flip-rate tolerance off for old baselines.
        let mut r = sample();
        r.schema_version = 2;
        let v2 = r.to_json().replace(",\"learned_costs\":true", "");
        assert!(!v2.contains("learned_costs"));
        let parsed = parse_history_jsonl(&v2).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].schema_version, 2);
        assert!(!parsed[0].learned_costs);
        assert!(!parsed[0].cost.is_empty());
    }

    #[test]
    fn sink_disabled_by_default_and_labels_records() {
        let sink = HistorySink::default();
        assert!(!sink.is_enabled());
        sink.append(sample());
        assert!(sink.is_empty());
        sink.enable_memory();
        sink.set_label("fleet");
        assert_eq!(sink.label(), "fleet");
        sink.append(sample());
        assert_eq!(sink.len(), 1);
        let parsed = parse_history_jsonl(&sink.to_jsonl()).unwrap();
        assert_eq!(parsed, sink.records());
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn dir_sink_appends_jsonl() {
        let dir = std::env::temp_dir().join(format!(
            "xdb_history_test_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let sink = HistorySink::default();
        sink.enable_dir(&dir).unwrap();
        sink.append(sample());
        sink.append(sample());
        let loaded = load_history_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0], sample());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
