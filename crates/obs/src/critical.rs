//! Critical-path analysis over a finished [`QueryTrace`].
//!
//! The span tree already carries the full simulated timeline of a query:
//! consult round-trips, DDL deployments, materializations, the final
//! pipelined query. This module walks that tree and answers "*where did
//! the end-to-end time go?*" — attributing every instant of the query's
//! wall (simulated) clock to exactly one span, and every span segment to
//! one of four categories: **compute**, **transfer**, **consult**, **ddl**.
//!
//! Attribution arithmetic runs in integer **nanoseconds** quantized from
//! the simulated-ms clock (`round(ms * 1e6)`). Integer telescoping sums
//! are exact, so the category totals sum to the query's end-to-end time
//! *bit-for-bit* — a property the bench harness tests across executors,
//! partition counts, and stream-chunk sizes. Floating-point telescoping
//! cannot make that guarantee; one nanosecond is six orders of magnitude
//! below anything the timing model resolves.
//!
//! The walk deliberately ignores two span kinds that visualise rather
//! than time: `Transfer` spans (equal slots of the exec window, in
//! ledger-merge order) and `Operator` spans (proportional subdivisions).
//! Honest transfer attribution instead comes from the `work_ms` attribute
//! the executor attaches to `Exec` spans: the tail `work_ms` of an Exec
//! span is engine compute, everything before it is wire waiting.

use crate::span::{Span, SpanKind};
use crate::trace::QueryTrace;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Nanoseconds per simulated millisecond (the quantization factor).
pub const NS_PER_MS: f64 = 1e6;

/// Quantize a simulated-ms instant to integer nanoseconds.
pub fn ns(ms: f64) -> i64 {
    (ms * NS_PER_MS).round() as i64
}

/// Integer nanoseconds back to simulated ms (display only).
pub fn ms(ns: i64) -> f64 {
    ns as f64 / NS_PER_MS
}

/// Where a slice of the critical path spent its time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CritCategory {
    /// Engine work: scans, joins, aggregation, optimizer time, parsing.
    Compute,
    /// Wire waiting: materialization imports, pipeline drains, result
    /// shipping — the non-compute tail of Exec spans.
    Transfer,
    /// Metadata / EXPLAIN consulting round-trips.
    Consult,
    /// Delegation DDL round-trips.
    Ddl,
}

impl CritCategory {
    pub fn label(self) -> &'static str {
        match self {
            CritCategory::Compute => "compute",
            CritCategory::Transfer => "transfer",
            CritCategory::Consult => "consult",
            CritCategory::Ddl => "ddl",
        }
    }

    pub fn parse(s: &str) -> Option<CritCategory> {
        match s {
            "compute" => Some(CritCategory::Compute),
            "transfer" => Some(CritCategory::Transfer),
            "consult" => Some(CritCategory::Consult),
            "ddl" => Some(CritCategory::Ddl),
            _ => None,
        }
    }
}

/// One maximal run of the timeline owned by a single span.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalStep {
    pub span_id: u32,
    pub kind: SpanKind,
    pub name: String,
    /// Engine node (or `client`) the step ran on.
    pub lane: String,
    /// Segment start/end in quantized ns since the trace origin.
    pub start_ns: i64,
    pub end_ns: i64,
}

impl CriticalStep {
    pub fn dur_ns(&self) -> i64 {
        self.end_ns - self.start_ns
    }
}

/// One attributed slice: `(category, location) -> nanoseconds`. The
/// location is the owning lane, prefixed with the producing node for
/// transfer slices that know their edge (`cdb->hdb`).
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    pub category: CritCategory,
    pub location: String,
    pub ns: i64,
}

/// The critical path of one query: every instant of `[root start, root
/// end]` assigned to a span and a category.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CriticalPath {
    /// End-to-end simulated time, quantized.
    pub total_ns: i64,
    /// Maximal same-span runs, in timeline order.
    pub steps: Vec<CriticalStep>,
    /// Per-(category, location) totals, largest first (ties: by key).
    pub attribution: Vec<Attribution>,
}

impl CriticalPath {
    /// Per-category totals (locations folded together).
    pub fn category_ns(&self) -> BTreeMap<&'static str, i64> {
        let mut out = BTreeMap::new();
        for a in &self.attribution {
            *out.entry(a.category.label()).or_insert(0) += a.ns;
        }
        out
    }

    /// Exact sum of every attributed slice — equals `total_ns` by
    /// construction (integer telescoping).
    pub fn attributed_ns(&self) -> i64 {
        self.attribution.iter().map(|a| a.ns).sum()
    }

    /// The largest single attribution slice, if any.
    pub fn dominant(&self) -> Option<&Attribution> {
        self.attribution.first()
    }

    /// Share of the end-to-end time, in percent.
    pub fn share_pct(&self, ns: i64) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            100.0 * ns as f64 / self.total_ns as f64
        }
    }

    /// The `EXPLAIN ANALYZE`-style section appended to query reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let head = match self.dominant() {
            Some(d) => format!(
                "critical path: {} spans, {:.0}% {} on {}",
                self.steps.len(),
                self.share_pct(d.ns),
                d.category.label(),
                d.location
            ),
            None => "critical path: empty trace".to_string(),
        };
        let _ = writeln!(out, "{head}");
        let cats = self.category_ns();
        // Categories largest first; stable order on ties.
        let mut order: Vec<(&str, i64)> = cats.into_iter().collect();
        order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        for (cat, total) in order {
            let mut locs: Vec<&Attribution> = self
                .attribution
                .iter()
                .filter(|a| a.category.label() == cat)
                .collect();
            locs.sort_by(|a, b| b.ns.cmp(&a.ns).then(a.location.cmp(&b.location)));
            let detail: Vec<String> = locs
                .iter()
                .map(|a| format!("{} {:.3}", a.location, ms(a.ns)))
                .collect();
            let _ = writeln!(
                out,
                "  {cat:<8} {:>10.3} ms {:>5.1}%  ({})",
                ms(total),
                self.share_pct(total),
                detail.join(", ")
            );
        }
        out
    }
}

/// Per-span info the sweep needs.
struct Candidate<'a> {
    span: &'a Span,
    start_ns: i64,
    end_ns: i64,
    /// Higher wins when spans overlap: leaf work > phase > query root.
    priority: u8,
}

/// Compute the critical path of the (first) query root in `trace`.
pub fn critical_path(trace: &QueryTrace) -> Option<CriticalPath> {
    let root = trace.root()?;
    critical_path_of(trace, root.id)
}

/// Critical paths of every root in a merged multi-query trace, in span
/// order.
pub fn critical_paths(trace: &QueryTrace) -> Vec<CriticalPath> {
    trace
        .spans
        .iter()
        .filter(|s| s.parent.is_none())
        .filter_map(|s| critical_path_of(trace, s.id))
        .collect()
}

/// Critical path of the subtree rooted at `root_id`.
pub fn critical_path_of(trace: &QueryTrace, root_id: u32) -> Option<CriticalPath> {
    let spans = &trace.spans;
    let root = spans.iter().find(|s| s.id == root_id)?;
    let root_start = ns(root.start_ms);
    let root_end = ns(root.end_ms());
    if root_end <= root_start {
        return Some(CriticalPath {
            total_ns: 0,
            steps: Vec::new(),
            attribution: Vec::new(),
        });
    }

    // Root ancestor of every span (spans are id-indexed, parents precede
    // children).
    let mut root_of: Vec<u32> = Vec::with_capacity(spans.len());
    for s in spans {
        let r = match s.parent {
            Some(p) => root_of[p as usize],
            None => s.id,
        };
        root_of.push(r);
    }

    // Candidate spans of this root's subtree. Transfer spans are equal-slot
    // visualisations and Operator spans proportional subdivisions — both
    // excluded. Exec spans nested under another Exec span (remote-producer
    // profile spans) are excluded too: their parent already owns the time.
    let kind_of = |id: u32| spans[id as usize].kind;
    let mut candidates: Vec<Candidate<'_>> = Vec::new();
    for s in spans {
        if root_of[s.id as usize] != root_id {
            continue;
        }
        let priority = match s.kind {
            SpanKind::Consult | SpanKind::Ddl => 3,
            SpanKind::Exec => match s.parent {
                Some(p) if kind_of(p) == SpanKind::Exec => continue,
                _ => 3,
            },
            SpanKind::Phase => 1,
            SpanKind::Query => {
                if s.id == root_id {
                    0
                } else {
                    continue;
                }
            }
            SpanKind::Task | SpanKind::Operator | SpanKind::Transfer => continue,
        };
        let start_ns = ns(s.start_ms).max(root_start);
        let end_ns = ns(s.end_ms()).min(root_end);
        if end_ns <= start_ns && priority > 0 {
            continue; // zero-length (e.g. cache-hit consults) never owns time
        }
        candidates.push(Candidate {
            span: s,
            start_ns,
            end_ns,
            priority,
        });
    }

    // Elementary intervals between all candidate boundaries.
    let mut cuts: Vec<i64> = candidates
        .iter()
        .flat_map(|c| [c.start_ns, c.end_ns])
        .chain([root_start, root_end])
        .filter(|t| (root_start..=root_end).contains(t))
        .collect();
    cuts.sort_unstable();
    cuts.dedup();

    // Assign each elementary interval to its most specific active span:
    // highest priority, then latest end (the gating span in an overlap),
    // then latest start (innermost), then highest id.
    let mut steps: Vec<CriticalStep> = Vec::new();
    for w in cuts.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        if hi <= lo {
            continue;
        }
        let owner = candidates
            .iter()
            .filter(|c| c.start_ns <= lo && c.end_ns >= hi)
            .max_by_key(|c| (c.priority, c.end_ns, c.start_ns, c.span.id))
            .expect("the root candidate covers every interval");
        match steps.last_mut() {
            Some(prev) if prev.span_id == owner.span.id && prev.end_ns == lo => {
                prev.end_ns = hi;
            }
            _ => steps.push(CriticalStep {
                span_id: owner.span.id,
                kind: owner.span.kind,
                name: owner.span.name.clone(),
                lane: owner.span.lane.clone(),
                start_ns: lo,
                end_ns: hi,
            }),
        }
    }

    // Attribute each step's interval to categories. Exec spans split at
    // `end - work_ms`: the tail is engine compute, the head wire waiting.
    let mut attribution: BTreeMap<(CritCategory, String), i64> = BTreeMap::new();
    let mut add = |cat: CritCategory, location: String, dur: i64| {
        if dur > 0 {
            *attribution.entry((cat, location)).or_insert(0) += dur;
        }
    };
    for step in &steps {
        let span = &spans[step.span_id as usize];
        match step.kind {
            SpanKind::Consult => add(CritCategory::Consult, step.lane.clone(), step.dur_ns()),
            SpanKind::Ddl => add(CritCategory::Ddl, step.lane.clone(), step.dur_ns()),
            SpanKind::Exec => {
                let work_ns = span
                    .attr("work_ms")
                    .and_then(|v| v.parse::<f64>().ok())
                    .map(ns)
                    .unwrap_or(i64::MAX);
                // Transfer head ends where the compute tail begins.
                let split = (ns(span.end_ms()) - work_ns)
                    .clamp(step.start_ns, step.end_ns)
                    .max(step.start_ns);
                let edge = match span.attr("from") {
                    Some(from) => format!("{from}->{}", step.lane),
                    None => format!("->{}", step.lane),
                };
                add(CritCategory::Transfer, edge, split - step.start_ns);
                add(
                    CritCategory::Compute,
                    step.lane.clone(),
                    step.end_ns - split,
                );
            }
            // Phase gaps: ann gaps are free consult probes, everything
            // else (parse, optimizer, pipelined producer work) is compute.
            SpanKind::Phase if span.name == "ann" => {
                add(CritCategory::Consult, step.lane.clone(), step.dur_ns());
            }
            _ => add(CritCategory::Compute, step.lane.clone(), step.dur_ns()),
        }
    }
    let mut attribution: Vec<Attribution> = attribution
        .into_iter()
        .map(|((category, location), ns)| Attribution {
            category,
            location,
            ns,
        })
        .collect();
    attribution.sort_by(|a, b| {
        b.ns.cmp(&a.ns)
            .then(a.category.cmp(&b.category))
            .then(a.location.cmp(&b.location))
    });

    Some(CriticalPath {
        total_ns: root_end - root_start,
        steps,
        attribution,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::TraceCollector;

    /// query[0,100] { prep[0,20]{consult[5,20]}, lopt[20,30],
    /// exec[30,100]{ ddl[30,40], mat exec[40,70] (work 10),
    /// final exec[70,100] (work 25) } }
    fn sample() -> QueryTrace {
        let c = TraceCollector::new();
        let q = c.span(SpanKind::Query, "query", "client", None, 0.0, 100.0);
        let p = c.span(SpanKind::Phase, "prep", "client", Some(q), 0.0, 20.0);
        c.span(
            SpanKind::Consult,
            "metadata t",
            "client",
            Some(p),
            5.0,
            15.0,
        );
        c.span(SpanKind::Phase, "lopt", "client", Some(q), 20.0, 10.0);
        let e = c.span(SpanKind::Phase, "exec", "client", Some(q), 30.0, 70.0);
        let t = c.span(SpanKind::Task, "task 0", "cdb", Some(e), 30.0, 10.0);
        c.span(SpanKind::Ddl, "create view", "cdb", Some(t), 30.0, 10.0);
        let m = c.span(
            SpanKind::Exec,
            "materialize t0 -> t1",
            "hdb",
            Some(e),
            40.0,
            30.0,
        );
        c.attr(m, "work_ms", "10");
        c.attr(m, "from", "cdb");
        let f = c.span(SpanKind::Exec, "xdb query", "hdb", Some(e), 70.0, 30.0);
        c.attr(f, "work_ms", "25");
        c.finish()
    }

    #[test]
    fn attribution_sums_exactly_to_end_to_end() {
        let cp = critical_path(&sample()).unwrap();
        assert_eq!(cp.total_ns, ns(100.0));
        assert_eq!(cp.attributed_ns(), cp.total_ns);
        let sum: i64 = cp.steps.iter().map(CriticalStep::dur_ns).sum();
        assert_eq!(sum, cp.total_ns);
    }

    #[test]
    fn categories_and_split() {
        let cp = critical_path(&sample()).unwrap();
        let cats = cp.category_ns();
        // consult: [5,20] probe; compute: [0,5] parse + [20,30] lopt +
        // 10 mat work + 25 final work; ddl: [30,40];
        // transfer: (30-10) mat head + (30-25) final head.
        assert_eq!(cats["consult"], ns(15.0));
        assert_eq!(cats["ddl"], ns(10.0));
        assert_eq!(cats["compute"], ns(5.0 + 10.0 + 10.0 + 25.0));
        assert_eq!(cats["transfer"], ns(20.0 + 5.0));
        let d = cp.dominant().unwrap();
        assert_eq!(d.category, CritCategory::Compute);
        // Transfer slices carry the producing edge.
        assert!(cp
            .attribution
            .iter()
            .any(|a| a.category == CritCategory::Transfer && a.location == "cdb->hdb"));
    }

    #[test]
    fn steps_are_timeline_ordered_maximal_runs() {
        let cp = critical_path(&sample()).unwrap();
        for w in cp.steps.windows(2) {
            assert_eq!(w[0].end_ns, w[1].start_ns, "steps tile the timeline");
            assert!(w[0].span_id != w[1].span_id, "adjacent steps merged");
        }
        assert_eq!(cp.steps.first().unwrap().start_ns, 0);
        assert_eq!(cp.steps.last().unwrap().end_ns, ns(100.0));
        // 7 steps: prep-gap, consult, lopt, ddl, mat, final, — mat/final
        // tile [40,100], prep gap [0,5].
        assert_eq!(cp.steps.len(), 6);
    }

    #[test]
    fn overlapping_execs_resolve_to_the_gating_span() {
        let c = TraceCollector::new();
        let q = c.span(SpanKind::Query, "query", "client", None, 0.0, 10.0);
        let e = c.span(SpanKind::Phase, "exec", "client", Some(q), 0.0, 10.0);
        let a = c.span(SpanKind::Exec, "a", "n1", Some(e), 0.0, 10.0);
        c.attr(a, "work_ms", "10");
        let b = c.span(SpanKind::Exec, "b", "n2", Some(e), 0.0, 8.0);
        c.attr(b, "work_ms", "8");
        let cp = critical_path(&c.finish()).unwrap();
        // `a` ends later, so it owns the whole window.
        assert_eq!(cp.steps.len(), 1);
        assert_eq!(cp.steps[0].name, "a");
        assert_eq!(cp.category_ns()["compute"], ns(10.0));
    }

    #[test]
    fn render_names_dominant_share() {
        let cp = critical_path(&sample()).unwrap();
        let r = cp.render();
        assert!(r.starts_with("critical path: 6 spans"), "{r}");
        assert!(r.contains("compute"), "{r}");
        assert!(r.contains("cdb->hdb"), "{r}");
        // Empty trace renders without panicking.
        assert!(critical_path(&QueryTrace::default()).is_none());
    }

    #[test]
    fn merged_traces_yield_one_path_per_root() {
        let mut t = sample();
        let mut second = sample();
        second.shift_ms(100.0);
        t.merge(second);
        let paths = critical_paths(&t);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].total_ns, paths[1].total_ns);
        assert_eq!(paths[0].category_ns(), paths[1].category_ns());
    }
}
