//! The structured event log: leveled, query-correlated events in a ring
//! buffer, exportable as JSON lines.
//!
//! Events carry the **simulated** timestamp of the moment they describe,
//! never the host clock, and library crates only emit `Info`-and-above
//! events from single-threaded deterministic code paths (the client's
//! planning pipeline, the post-barrier executor tail, cleanup) — so the
//! event log, like the trace, is bit-identical between the sequential and
//! parallel executors. `Debug` events may come from concurrent contexts
//! and are dropped by the default `Info` filter.

use crate::trace::{json_number, json_string};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Event severity. Ordering: `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
}

impl Level {
    pub fn label(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parse a level name (`XDB_LOG_LEVEL`, `repro --log-level`).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Debug,
            1 => Level::Info,
            2 => Level::Warn,
            _ => Level::Error,
        }
    }
}

/// One structured event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Sequence number in emission order (monotone per log).
    pub seq: u64,
    /// Simulated-clock timestamp of the moment described, in ms.
    pub ts_ms: f64,
    pub level: Level,
    /// Emitting subsystem, e.g. `core.client`, `core.delegation`.
    pub target: String,
    /// Correlation id: the query id this event belongs to, if any (the
    /// same id that names the query's `xdb_q<id>_*` objects).
    pub query: Option<u64>,
    pub message: String,
    /// Structured key/value payload, in emission order.
    pub fields: Vec<(String, String)>,
}

impl Event {
    /// One JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"seq\":{},\"ts_ms\":{},\"level\":{},\"target\":{}",
            self.seq,
            json_number(self.ts_ms),
            json_string(self.level.label()),
            json_string(&self.target)
        );
        if let Some(q) = self.query {
            let _ = write!(out, ",\"query\":{q}");
        }
        let _ = write!(out, ",\"message\":{}", json_string(&self.message));
        for (k, v) in &self.fields {
            let _ = write!(out, ",{}:{}", json_string(k), json_string(v));
        }
        out.push('}');
        out
    }
}

/// Ring-buffer event sink with a level filter.
#[derive(Debug)]
pub struct EventLog {
    min_level: AtomicU8,
    next_seq: AtomicU64,
    inner: Mutex<Ring>,
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<Event>,
    capacity: usize,
    /// Events discarded because the ring was full.
    dropped: u64,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new(4096)
    }
}

impl EventLog {
    pub fn new(capacity: usize) -> EventLog {
        EventLog {
            min_level: AtomicU8::new(Level::Info as u8),
            next_seq: AtomicU64::new(0),
            inner: Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity.min(1024)),
                capacity: capacity.max(1),
                dropped: 0,
            }),
        }
    }

    pub fn set_min_level(&self, level: Level) {
        self.min_level.store(level as u8, Ordering::Release);
    }

    pub fn min_level(&self) -> Level {
        Level::from_u8(self.min_level.load(Ordering::Acquire))
    }

    /// Whether an event at `level` would be kept.
    pub fn enabled(&self, level: Level) -> bool {
        level >= self.min_level()
    }

    /// Emit an event. Below-threshold events are dropped without taking
    /// the lock or consuming a sequence number.
    pub fn log(
        &self,
        level: Level,
        target: &str,
        query: Option<u64>,
        ts_ms: f64,
        message: impl Into<String>,
        fields: &[(&str, &str)],
    ) {
        if !self.enabled(level) {
            return;
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let event = Event {
            seq,
            ts_ms,
            level,
            target: target.to_string(),
            query,
            message: message.into(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        };
        let mut ring = self.inner.lock();
        if ring.events.len() == ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    }

    /// All retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.inner.lock().events.iter().cloned().collect()
    }

    /// Events discarded to ring-buffer eviction.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().events.is_empty()
    }

    pub fn clear(&self) {
        let mut ring = self.inner.lock();
        ring.events.clear();
        ring.dropped = 0;
    }

    /// JSON-lines export: one JSON object per retained event.
    pub fn to_jsonl(&self) -> String {
        let ring = self.inner.lock();
        let mut out = String::new();
        for e in &ring.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn levels_filter_and_order() {
        assert!(Level::Debug < Level::Info && Level::Warn < Level::Error);
        let log = EventLog::new(16);
        log.log(Level::Debug, "t", None, 0.0, "dropped", &[]);
        log.log(Level::Info, "t", Some(7), 1.5, "kept", &[("k", "v")]);
        assert_eq!(log.len(), 1);
        let e = &log.snapshot()[0];
        assert_eq!(e.message, "kept");
        assert_eq!(e.query, Some(7));
        assert_eq!(e.fields[0], ("k".to_string(), "v".to_string()));
        log.set_min_level(Level::Debug);
        log.log(Level::Debug, "t", None, 0.0, "now kept", &[]);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn ring_evicts_oldest() {
        let log = EventLog::new(2);
        for i in 0..5 {
            log.log(Level::Info, "t", None, i as f64, format!("m{i}"), &[]);
        }
        let events = log.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].message, "m3");
        assert_eq!(events[1].message, "m4");
        assert_eq!(log.dropped(), 3);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn jsonl_parses_line_by_line() {
        let log = EventLog::new(8);
        log.log(
            Level::Warn,
            "core.client",
            Some(3),
            12.5,
            "query \"weird\"\nname",
            &[("node", "db1")],
        );
        log.log(Level::Error, "engine", None, 13.0, "boom", &[]);
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let v = json::parse(line).expect("line parses");
            assert!(v.get("ts_ms").is_some());
            assert!(v.get("level").is_some());
        }
        let v = json::parse(lines[0]).unwrap();
        assert_eq!(v.get("query").and_then(json::Value::as_f64), Some(3.0));
        assert_eq!(v.get("node").and_then(json::Value::as_str), Some("db1"));
    }
}
