//! Per-engine execution profiles: what one engine did while evaluating one
//! statement — operator statistics plus the profiles of remote producers
//! that fed its pipelined foreign scans.

/// Statistics of one physical operator, collected post-order during
/// execution (children before their consumer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStat {
    /// Operator label (`scan`, `filter`, `hash join`, …).
    pub op: &'static str,
    /// Rows entering the operator (sum over inputs).
    pub rows_in: u64,
    /// Rows leaving the operator.
    pub rows_out: u64,
    /// Hash-join build side size (0 for non-joins).
    pub build_rows: u64,
    /// Hash-join probe side size (0 for non-joins).
    pub probe_rows: u64,
}

/// What one engine node did while evaluating one statement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecProfile {
    /// Engine node that ran the statement.
    pub node: String,
    /// Rows of the produced relation.
    pub rows: u64,
    /// Wire bytes of the produced relation.
    pub bytes: u64,
    /// Simulated work the engine itself performed.
    pub work_ms: f64,
    /// Simulated finish time relative to the statement's start (edge
    /// composition included).
    pub finish_ms: f64,
    /// Per-operator statistics in post-order.
    pub ops: Vec<OpStat>,
    /// Profiles of remote producers that fed this engine's foreign-table
    /// scans, paired with the wire time of the edge.
    pub remotes: Vec<(ExecProfile, f64)>,
}

impl ExecProfile {
    /// Total rows produced across this profile and every nested remote.
    pub fn total_rows(&self) -> u64 {
        self.rows
            + self
                .remotes
                .iter()
                .map(|(p, _)| p.total_rows())
                .sum::<u64>()
    }
}
