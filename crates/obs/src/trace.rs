//! The finished trace of one (or several merged) query submissions, and
//! its three sinks: Chrome `trace_event` JSON, an `EXPLAIN ANALYZE`-style
//! text report, and a diffable metrics snapshot.

use crate::span::{Span, SpanId, SpanKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Spans plus counters of one query submission (or a merged workload).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryTrace {
    /// Spans in emission order; a span's parent always precedes it.
    pub spans: Vec<Span>,
    pub counters: BTreeMap<String, f64>,
}

impl QueryTrace {
    /// The root span (the first parentless one), if any.
    pub fn root(&self) -> Option<&Span> {
        self.spans.iter().find(|s| s.parent.is_none())
    }

    /// Summed duration of phase spans with the given name.
    pub fn phase_ms(&self, name: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.kind == SpanKind::Phase && s.name == name)
            .map(|s| s.dur_ms)
            .sum()
    }

    pub fn counter(&self, name: &str) -> f64 {
        self.counters.get(name).copied().unwrap_or(0.0)
    }

    /// End of the last span (simulated ms since origin).
    pub fn end_ms(&self) -> f64 {
        self.spans.iter().map(Span::end_ms).fold(0.0, f64::max)
    }

    /// Display lanes in order of first appearance (this is the Chrome
    /// thread order, so it is deterministic).
    pub fn lanes(&self) -> Vec<String> {
        let mut lanes: Vec<String> = Vec::new();
        for s in &self.spans {
            if !lanes.contains(&s.lane) {
                lanes.push(s.lane.clone());
            }
        }
        lanes
    }

    /// Spans of a given kind.
    pub fn spans_of(&self, kind: SpanKind) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.kind == kind)
    }

    /// Shift every span by `offset_ms` (used when concatenating the traces
    /// of a workload onto one timeline).
    pub fn shift_ms(&mut self, offset_ms: f64) {
        for s in &mut self.spans {
            s.start_ms += offset_ms;
        }
    }

    /// Append another trace: its span ids are rebased past ours, its
    /// counters are summed into ours. The caller is responsible for
    /// shifting the other trace's timeline first if overlap is unwanted.
    pub fn merge(&mut self, other: QueryTrace) {
        let base = self.spans.len() as SpanId;
        for mut s in other.spans {
            s.id += base;
            s.parent = s.parent.map(|p| p + base);
            self.spans.push(s);
        }
        for (k, v) in other.counters {
            *self.counters.entry(k).or_insert(0.0) += v;
        }
    }

    /// Metrics snapshot: every counter, plus derived per-kind span counts
    /// and per-lane busy time.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut counters = self.counters.clone();
        for s in &self.spans {
            *counters
                .entry(format!("spans.{}", s.kind.label()))
                .or_insert(0.0) += 1.0;
        }
        MetricsSnapshot { counters }
    }

    /// A canonical, line-per-span dump. Two traces are bit-identical iff
    /// their canonical forms are equal (f64 values print via Rust's
    /// shortest-round-trip formatting).
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            let _ = write!(
                out,
                "{} parent={:?} {} {:?} lane={} start={} dur={}",
                s.id,
                s.parent,
                s.kind.label(),
                s.name,
                s.lane,
                s.start_ms,
                s.dur_ms
            );
            for (k, v) in &s.attrs {
                let _ = write!(out, " {k}={v:?}");
            }
            out.push('\n');
        }
        for (k, v) in &self.counters {
            let _ = writeln!(out, "counter {k}={v}");
        }
        out
    }

    /// `EXPLAIN ANALYZE`-style tree report.
    pub fn render_text(&self) -> String {
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.spans.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (i, s) in self.spans.iter().enumerate() {
            match s.parent {
                Some(p) => children[p as usize].push(i),
                None => roots.push(i),
            }
        }
        let mut out = String::new();
        for &r in &roots {
            self.render_node(&mut out, &children, r, 0);
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k} = {v}");
            }
        }
        out
    }

    fn render_node(&self, out: &mut String, children: &[Vec<usize>], idx: usize, depth: usize) {
        let s = &self.spans[idx];
        for _ in 0..depth {
            out.push_str("  ");
        }
        let _ = write!(
            out,
            "{} [{}] {:.3}..{:.3} ms ({:.3} ms) @{}",
            s.name,
            s.kind.label(),
            s.start_ms,
            s.end_ms(),
            s.dur_ms,
            s.lane
        );
        for (k, v) in &s.attrs {
            let _ = write!(out, " {k}={v}");
        }
        out.push('\n');
        for &c in &children[idx] {
            self.render_node(out, children, c, depth + 1);
        }
    }

    /// Chrome `trace_event` JSON: one process, one thread ("lane") per
    /// engine node / client / network, `X` complete events with
    /// microsecond timestamps, and `M` metadata events naming the lanes.
    ///
    /// Open in `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn to_chrome_json(&self) -> String {
        let lanes = self.lanes();
        let tid = |lane: &str| lanes.iter().position(|l| l == lane).unwrap_or(0) + 1;
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        let mut push = |line: String, out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&line);
        };
        push(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"xdb\"}}"
                .to_string(),
            &mut out,
        );
        for (i, lane) in lanes.iter().enumerate() {
            push(
                format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":{}}}}}",
                    i + 1,
                    json_string(lane)
                ),
                &mut out,
            );
            // Keep the lane order stable in viewers that sort by index.
            push(
                format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_sort_index\",\
                     \"args\":{{\"sort_index\":{}}}}}",
                    i + 1,
                    i + 1
                ),
                &mut out,
            );
        }
        for s in &self.spans {
            let mut args = format!("\"span\":{},\"lane\":{}", s.id, json_string(&s.lane));
            if let Some(p) = s.parent {
                let _ = write!(args, ",\"parent\":{p}");
            }
            for (k, v) in &s.attrs {
                let _ = write!(args, ",{}:{}", json_string(k), json_string(v));
            }
            push(
                format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\
                     \"name\":{},\"cat\":{},\"args\":{{{}}}}}",
                    tid(&s.lane),
                    json_number(s.start_ms * 1000.0),
                    json_number(s.dur_ms * 1000.0),
                    json_string(&s.name),
                    json_string(s.kind.label()),
                    args
                ),
                &mut out,
            );
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{");
        let mut first_counter = true;
        for (k, v) in &self.counters {
            if !first_counter {
                out.push(',');
            }
            first_counter = false;
            let _ = write!(out, "{}:{}", json_string(k), json_number(*v));
        }
        out.push_str("}}\n");
        out
    }
}

/// Escape a string as a JSON literal (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an f64 as a JSON number (Rust's shortest-round-trip `Display`,
/// which never produces the `inf`/`NaN` tokens JSON forbids — simulated
/// times are always finite).
pub fn json_number(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Counters of one run, diffable against a baseline run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, f64>,
}

impl MetricsSnapshot {
    pub fn get(&self, name: &str) -> f64 {
        self.counters.get(name).copied().unwrap_or(0.0)
    }

    /// `self - baseline`, over the union of keys (zero-delta keys kept so
    /// a diff is also a full inventory).
    pub fn diff(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        let mut counters = BTreeMap::new();
        for k in self.counters.keys().chain(baseline.counters.keys()) {
            counters.insert(k.clone(), self.get(k) - baseline.get(k));
        }
        MetricsSnapshot { counters }
    }

    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "{k} = {v}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::TraceCollector;
    use crate::json;

    fn sample() -> QueryTrace {
        let c = TraceCollector::new();
        let q = c.span(SpanKind::Query, "q1", "client", None, 0.0, 30.0);
        let p = c.span(SpanKind::Phase, "prep", "client", Some(q), 0.0, 10.0);
        c.span(SpanKind::Consult, "consult t", "db1", Some(p), 0.0, 6.0);
        let e = c.span(SpanKind::Phase, "exec", "client", Some(q), 10.0, 20.0);
        c.span(SpanKind::Exec, "xdb query", "db2", Some(e), 12.0, 18.0);
        c.add("consults", 1.0);
        c.finish()
    }

    #[test]
    fn phase_projection_and_lanes() {
        let t = sample();
        assert_eq!(t.phase_ms("prep"), 10.0);
        assert_eq!(t.phase_ms("exec"), 20.0);
        assert_eq!(t.lanes(), vec!["client", "db1", "db2"]);
        assert_eq!(t.root().unwrap().name, "q1");
        assert_eq!(t.end_ms(), 30.0);
    }

    #[test]
    fn merge_rebases_ids_and_sums_counters() {
        let mut a = sample();
        let mut b = sample();
        b.shift_ms(30.0);
        let n = a.spans.len();
        a.merge(b);
        assert_eq!(a.spans.len(), 2 * n);
        assert_eq!(a.spans[n].id as usize, n);
        assert_eq!(a.spans[n].parent, None);
        assert_eq!(a.spans[n].start_ms, 30.0);
        assert_eq!(a.spans[n + 1].parent, Some(n as u32));
        assert_eq!(a.counter("consults"), 2.0);
    }

    #[test]
    fn chrome_json_parses_and_names_lanes() {
        let t = sample();
        let j = t.to_chrome_json();
        let v = json::parse(&j).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(json::Value::as_str) == Some("M"))
            .filter(|e| e.get("name").and_then(json::Value::as_str) == Some("thread_name"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
            })
            .collect();
        assert_eq!(names, vec!["client", "db1", "db2"]);
        let xs = events
            .iter()
            .filter(|e| e.get("ph").and_then(json::Value::as_str) == Some("X"))
            .count();
        assert_eq!(xs, t.spans.len());
    }

    #[test]
    fn text_report_nests() {
        let t = sample();
        let r = t.render_text();
        assert!(r.contains("q1 [query]"), "{r}");
        assert!(r.contains("\n  prep [phase]"), "{r}");
        assert!(r.contains("\n    consult t [consult]"), "{r}");
        assert!(r.contains("consults = 1"), "{r}");
    }

    #[test]
    fn metrics_diff() {
        let a = sample().metrics();
        let mut twice = sample();
        twice.merge(sample());
        let b = twice.metrics();
        let d = b.diff(&a);
        assert_eq!(d.get("consults"), 1.0);
        assert_eq!(d.get("spans.query"), 1.0);
        assert_eq!(a.diff(&a).get("consults"), 0.0);
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_number(1.5), "1.5");
        assert_eq!(json_number(3.0), "3");
    }

    #[test]
    fn json_string_roundtrips_control_chars_and_non_ascii() {
        // Control characters below 0x20 must come out as \uXXXX escapes;
        // non-ASCII text rides through as raw UTF-8. Both must survive a
        // round trip through the hand-rolled reader.
        for s in [
            "bell\u{7} backspace\u{8} formfeed\u{c} esc\u{1b} null\u{0}",
            "tabs\tand\r\nnewlines",
            "querié — grüße 値 🦀",
            "mixed \u{1} ünïcode \"quoted\" \\slash",
        ] {
            let encoded = json_string(s);
            assert!(encoded.is_ascii() || !s.is_ascii(), "{encoded}");
            let doc = format!("{{\"v\":{encoded}}}");
            let v = json::parse(&doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
            assert_eq!(v.get("v").and_then(json::Value::as_str), Some(s), "{doc}");
        }
        // Explicitly: control chars are escaped, never emitted raw.
        assert_eq!(json_string("\u{0}"), "\"\\u0000\"");
        assert_eq!(json_string("\u{1f}"), "\"\\u001f\"");
    }

    #[test]
    fn event_messages_and_labels_roundtrip_through_jsonl() {
        // The event log serializes via the same hand-rolled writer; weird
        // messages, targets, and field values must round-trip.
        let log = crate::EventLog::new(4);
        let message = "café \u{1b}[31mred\u{7}";
        let value = "grüße\n\t\"quoted\"";
        log.log(
            crate::Level::Warn,
            "core.client\u{1}",
            Some(9),
            1.0,
            message,
            &[("label", value)],
        );
        let jsonl = log.to_jsonl();
        let v = json::parse(jsonl.trim()).unwrap_or_else(|e| panic!("{jsonl}: {e}"));
        assert_eq!(
            v.get("message").and_then(json::Value::as_str),
            Some(message)
        );
        assert_eq!(v.get("label").and_then(json::Value::as_str), Some(value));
        assert_eq!(
            v.get("target").and_then(json::Value::as_str),
            Some("core.client\u{1}")
        );
    }

    #[test]
    fn metrics_diff_over_disjoint_keys() {
        let a = MetricsSnapshot {
            counters: [("only.a".to_string(), 3.0), ("shared".to_string(), 10.0)]
                .into_iter()
                .collect(),
        };
        let b = MetricsSnapshot {
            counters: [("only.b".to_string(), 4.0), ("shared".to_string(), 7.0)]
                .into_iter()
                .collect(),
        };
        let d = a.diff(&b);
        // Union of keys: keys unique to either side are kept, with the
        // missing side treated as zero.
        assert_eq!(d.counters.len(), 3);
        assert_eq!(d.get("only.a"), 3.0);
        assert_eq!(d.get("only.b"), -4.0);
        assert_eq!(d.get("shared"), 3.0);
        // And a key absent from both reads as zero, not a panic.
        assert_eq!(d.get("absent"), 0.0);
    }
}
