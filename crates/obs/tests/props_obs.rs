//! Property tests for the log-bucketed histogram: sharded observation
//! followed by merge must be exactly equivalent to observing every value
//! into one histogram (the invariant the parallel executor's determinism
//! rests on), and quantiles must be monotone and bounded by the observed
//! range.

use proptest::prelude::*;
use xdb_obs::Histogram;

/// Dyadic values (multiples of 1/4): their sums are exact in f64
/// regardless of addition order, so shard-merge equality can be asserted
/// bit-for-bit, `sum` included.
fn dyadic_values() -> BoxedStrategy<Vec<f64>> {
    prop::collection::vec((0u32..4096).prop_map(|v| v as f64 / 4.0), 0..256).boxed()
}

proptest! {
    #[test]
    fn merge_of_shards_equals_single_histogram(
        values in dyadic_values(),
        shards in 1usize..8,
    ) {
        let mut single = Histogram::new();
        for v in &values {
            single.observe(*v);
        }
        // Round-robin the same values over `shards` histograms, then
        // merge — the way partition-parallel workers aggregate.
        let mut parts: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
        for (i, v) in values.iter().enumerate() {
            parts[i % shards].observe(*v);
        }
        let mut merged = Histogram::new();
        for p in &parts {
            merged.merge(p);
        }
        prop_assert_eq!(&merged, &single);
        prop_assert_eq!(merged.count, values.len() as u64);
    }

    #[test]
    fn merge_with_empty_is_identity(values in dyadic_values()) {
        let mut h = Histogram::new();
        for v in &values {
            h.observe(*v);
        }
        let mut merged = h.clone();
        merged.merge(&Histogram::new());
        prop_assert_eq!(&merged, &h);
        let mut other = Histogram::new();
        other.merge(&h);
        prop_assert_eq!(&other, &h);
    }

    #[test]
    fn quantiles_monotone_and_bounded(
        values in prop::collection::vec(0.0f64..1.0e6, 1..256),
        qa in 0.0f64..1.0,
        qb in 0.0f64..1.0,
    ) {
        let mut h = Histogram::new();
        for v in &values {
            h.observe(*v);
        }
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(
            h.quantile(lo) <= h.quantile(hi),
            "q({lo}) = {} > q({hi}) = {}",
            h.quantile(lo),
            h.quantile(hi)
        );
        // Every quantile is clamped into the observed range.
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(h.quantile(0.0) >= min);
        prop_assert!(h.quantile(1.0) <= max);
        prop_assert_eq!(h.count, values.len() as u64);
    }

    #[test]
    fn cumulative_buckets_cover_count(values in dyadic_values()) {
        let mut h = Histogram::new();
        for v in &values {
            h.observe(*v);
        }
        let cum = h.cumulative_buckets();
        // Cumulative counts are non-decreasing and end at `count`.
        let mut prev = 0u64;
        for (_, c) in &cum {
            prop_assert!(*c >= prev);
            prev = *c;
        }
        if !values.is_empty() {
            prop_assert_eq!(prev, h.count);
        }
    }
}
