//! # xdb-tpch
//!
//! The paper's evaluation workload: a from-scratch deterministic TPC-H
//! data generator ([`dbgen`]), the six cross-database queries the paper
//! evaluates ([`queries`]: Q3, Q5, Q7, Q8, Q9, Q10), and the table
//! distributions over the seven-DBMS testbed ([`distributions`]: Table
//! III).

pub mod dbgen;
pub mod distributions;
pub mod queries;
pub mod schema;

pub use dbgen::TpchGen;
pub use distributions::{build_cluster, ProfileAssignment, TableDist, NODES};
pub use queries::TpchQuery;
pub use schema::TpchTable;
