//! Deterministic TPC-H data generator (a from-scratch `dbgen`).
//!
//! Every column value is a pure function of `(seed, table, key, column)`
//! via splitmix64, so tables can be generated independently and in any
//! order while foreign keys and order-date/ship-date constraints still
//! hold exactly. Cardinalities follow the spec's scaling rules:
//!
//! | table    | rows            |
//! |----------|-----------------|
//! | region   | 5               |
//! | nation   | 25              |
//! | supplier | 10,000 × SF     |
//! | part     | 200,000 × SF    |
//! | partsupp | 4 per part      |
//! | customer | 150,000 × SF    |
//! | orders   | 10 per customer |
//! | lineitem | 1–7 per order   |

use crate::schema::TpchTable;
use xdb_engine::relation::Relation;
use xdb_sql::value::{date, Value};

/// splitmix64: the per-cell hash at the heart of the generator.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Days orders span: 1992-01-01 plus ~6.4 years (receipt dates stay within
/// 1998).
const ORDER_DATE_SPAN: u64 = 2340;

pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// The 25 nations with their region keys, per the spec.
pub const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const SHIP_INSTRUCT: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];
const CONTAINERS: [&str; 8] = [
    "SM CASE",
    "SM BOX",
    "MED BAG",
    "MED BOX",
    "LG CASE",
    "LG BOX",
    "JUMBO PACK",
    "WRAP JAR",
];
/// Part-name word pool; colors included so `p_name LIKE '%green%'` (Q9)
/// selects a stable ~1/10 fraction.
const PART_WORDS: [&str; 30] = [
    "green",
    "blue",
    "red",
    "ivory",
    "salmon",
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cream",
    "cyan",
    "dark",
    "deep",
    "dim",
    "dodger",
    "drab",
    "firebrick",
];
const TYPE_SYLL1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_SYLL2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPE_SYLL3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const COMMENT_WORDS: [&str; 16] = [
    "carefully",
    "quickly",
    "express",
    "pending",
    "final",
    "ironic",
    "regular",
    "special",
    "deposits",
    "packages",
    "accounts",
    "requests",
    "instructions",
    "theodolites",
    "pinto",
    "foxes",
];

/// The generator: scale factor + seed.
#[derive(Debug, Clone, Copy)]
pub struct TpchGen {
    pub scale: f64,
    pub seed: u64,
}

impl TpchGen {
    pub fn new(scale: f64) -> TpchGen {
        TpchGen {
            scale,
            seed: 19920101,
        }
    }

    pub fn with_seed(scale: f64, seed: u64) -> TpchGen {
        TpchGen { scale, seed }
    }

    fn h(&self, table: u64, key: u64, col: u64) -> u64 {
        mix(self.seed ^ mix(table).wrapping_add(mix(key).rotate_left(17)) ^ mix(col << 7))
    }

    fn pick<'a>(&self, table: u64, key: u64, col: u64, pool: &[&'a str]) -> &'a str {
        pool[(self.h(table, key, col) % pool.len() as u64) as usize]
    }

    fn uniform(&self, table: u64, key: u64, col: u64, lo: i64, hi: i64) -> i64 {
        lo + (self.h(table, key, col) % (hi - lo + 1) as u64) as i64
    }

    fn money(&self, table: u64, key: u64, col: u64, lo_cents: i64, hi_cents: i64) -> f64 {
        self.uniform(table, key, col, lo_cents, hi_cents) as f64 / 100.0
    }

    fn comment(&self, table: u64, key: u64, col: u64) -> String {
        let n = 2 + (self.h(table, key, col) % 3) as usize;
        let mut out = String::new();
        for i in 0..n {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(self.pick(table, key, col + 100 + i as u64, &COMMENT_WORDS));
        }
        out
    }

    // ------------------------------------------------------------ counts

    pub fn suppliers(&self) -> u64 {
        ((10_000.0 * self.scale) as u64).max(1)
    }

    pub fn parts(&self) -> u64 {
        ((200_000.0 * self.scale) as u64).max(1)
    }

    pub fn customers(&self) -> u64 {
        ((150_000.0 * self.scale) as u64).max(1)
    }

    pub fn orders(&self) -> u64 {
        self.customers() * 10
    }

    fn lines_of(&self, orderkey: u64) -> u64 {
        1 + self.h(7, orderkey, 0) % 7
    }

    /// Functional order date: also consulted by the lineitem generator.
    fn order_date(&self, orderkey: u64) -> i32 {
        date::days_from_ymd(1992, 1, 1) + (self.h(6, orderkey, 4) % ORDER_DATE_SPAN) as i32
    }

    /// Number of rows a table will have at this scale.
    pub fn row_count(&self, table: TpchTable) -> u64 {
        match table {
            TpchTable::Region => 5,
            TpchTable::Nation => 25,
            TpchTable::Supplier => self.suppliers(),
            TpchTable::Part => self.parts(),
            TpchTable::PartSupp => self.parts() * 4,
            TpchTable::Customer => self.customers(),
            TpchTable::Orders => self.orders(),
            TpchTable::Lineitem => (1..=self.orders()).map(|o| self.lines_of(o)).sum(),
        }
    }

    // ---------------------------------------------------------- tables

    /// Generate a full table.
    pub fn table(&self, table: TpchTable) -> Relation {
        let fields = table.columns();
        let rows = match table {
            TpchTable::Region => self.gen_region(),
            TpchTable::Nation => self.gen_nation(),
            TpchTable::Supplier => self.gen_supplier(),
            TpchTable::Part => self.gen_part(),
            TpchTable::PartSupp => self.gen_partsupp(),
            TpchTable::Customer => self.gen_customer(),
            TpchTable::Orders => self.gen_orders(),
            TpchTable::Lineitem => self.gen_lineitem(),
        };
        Relation::new(fields, rows)
    }

    fn gen_region(&self) -> Vec<Vec<Value>> {
        REGIONS
            .iter()
            .enumerate()
            .map(|(i, name)| {
                vec![
                    Value::Int(i as i64),
                    Value::str(*name),
                    Value::str(self.comment(0, i as u64, 2)),
                ]
            })
            .collect()
    }

    fn gen_nation(&self) -> Vec<Vec<Value>> {
        NATIONS
            .iter()
            .enumerate()
            .map(|(i, (name, region))| {
                vec![
                    Value::Int(i as i64),
                    Value::str(*name),
                    Value::Int(*region),
                    Value::str(self.comment(1, i as u64, 3)),
                ]
            })
            .collect()
    }

    fn gen_supplier(&self) -> Vec<Vec<Value>> {
        (1..=self.suppliers())
            .map(|k| {
                vec![
                    Value::Int(k as i64),
                    Value::str(format!("Supplier#{k:09}")),
                    Value::str(format!("{} supply road", self.uniform(2, k, 2, 1, 999))),
                    Value::Int(self.uniform(2, k, 3, 0, 24)),
                    Value::str(phone(self.h(2, k, 4))),
                    Value::Float(self.money(2, k, 5, -99_999, 999_999)),
                    Value::str(self.comment(2, k, 6)),
                ]
            })
            .collect()
    }

    fn gen_part(&self) -> Vec<Vec<Value>> {
        (1..=self.parts())
            .map(|k| {
                let name = format!(
                    "{} {} {}",
                    self.pick(3, k, 1, &PART_WORDS),
                    self.pick(3, k, 11, &PART_WORDS),
                    self.pick(3, k, 21, &PART_WORDS)
                );
                let ptype = format!(
                    "{} {} {}",
                    self.pick(3, k, 41, &TYPE_SYLL1),
                    self.pick(3, k, 42, &TYPE_SYLL2),
                    self.pick(3, k, 43, &TYPE_SYLL3)
                );
                vec![
                    Value::Int(k as i64),
                    Value::str(name),
                    Value::str(format!("Manufacturer#{}", 1 + self.h(3, k, 2) % 5)),
                    Value::str(format!(
                        "Brand#{}{}",
                        1 + self.h(3, k, 3) % 5,
                        1 + self.h(3, k, 31) % 5
                    )),
                    Value::str(ptype),
                    Value::Int(self.uniform(3, k, 5, 1, 50)),
                    Value::str(self.pick(3, k, 6, &CONTAINERS)),
                    // Spec formula keeps prices key-dependent but bounded.
                    Value::Float(
                        (90_000 + (k as i64 % 200) * 100 + k as i64 % 1000) as f64 / 100.0,
                    ),
                    Value::str(self.comment(3, k, 8)),
                ]
            })
            .collect()
    }

    fn gen_partsupp(&self) -> Vec<Vec<Value>> {
        let suppliers = self.suppliers();
        let mut rows = Vec::with_capacity((self.parts() * 4) as usize);
        for p in 1..=self.parts() {
            for i in 0..4u64 {
                // Spec-style supplier spreading so every part has four
                // distinct suppliers.
                let s = (p + i * (suppliers / 4 + (p - 1) / suppliers % (suppliers / 4).max(1)))
                    % suppliers
                    + 1;
                rows.push(vec![
                    Value::Int(p as i64),
                    Value::Int(s as i64),
                    Value::Int(self.uniform(4, p * 4 + i, 2, 1, 9999)),
                    Value::Float(self.money(4, p * 4 + i, 3, 100, 100_000)),
                    Value::str(self.comment(4, p * 4 + i, 4)),
                ]);
            }
        }
        rows
    }

    fn gen_customer(&self) -> Vec<Vec<Value>> {
        (1..=self.customers())
            .map(|k| {
                vec![
                    Value::Int(k as i64),
                    Value::str(format!("Customer#{k:09}")),
                    Value::str(format!("{} market lane", self.uniform(5, k, 2, 1, 999))),
                    Value::Int(self.uniform(5, k, 3, 0, 24)),
                    Value::str(phone(self.h(5, k, 4))),
                    Value::Float(self.money(5, k, 5, -99_999, 999_999)),
                    Value::str(self.pick(5, k, 6, &SEGMENTS)),
                    Value::str(self.comment(5, k, 7)),
                ]
            })
            .collect()
    }

    fn gen_orders(&self) -> Vec<Vec<Value>> {
        let customers = self.customers();
        (1..=self.orders())
            .map(|k| {
                let odate = self.order_date(k);
                vec![
                    Value::Int(k as i64),
                    Value::Int((self.h(6, k, 1) % customers + 1) as i64),
                    Value::str(self.pick(6, k, 2, &["O", "F", "P"])),
                    Value::Float(self.money(6, k, 3, 100_000, 50_000_000)),
                    Value::Date(odate),
                    Value::str(self.pick(6, k, 5, &PRIORITIES)),
                    Value::str(format!("Clerk#{:09}", self.h(6, k, 6) % 1000 + 1)),
                    Value::Int(0),
                    Value::str(self.comment(6, k, 8)),
                ]
            })
            .collect()
    }

    fn gen_lineitem(&self) -> Vec<Vec<Value>> {
        let parts = self.parts();
        let suppliers = self.suppliers();
        let mut rows = Vec::new();
        for o in 1..=self.orders() {
            let odate = self.order_date(o);
            for line in 1..=self.lines_of(o) {
                let key = o * 8 + line;
                let quantity = self.uniform(7, key, 1, 1, 50) as f64;
                let price_per_unit = self.money(7, key, 2, 90_000, 105_000);
                let ship = odate + self.uniform(7, key, 3, 1, 121) as i32;
                let commit = odate + self.uniform(7, key, 4, 30, 90) as i32;
                let receipt = ship + self.uniform(7, key, 5, 1, 30) as i32;
                rows.push(vec![
                    Value::Int(o as i64),
                    Value::Int((self.h(7, key, 6) % parts + 1) as i64),
                    Value::Int((self.h(7, key, 7) % suppliers + 1) as i64),
                    Value::Int(line as i64),
                    Value::Float(quantity),
                    Value::Float((quantity * price_per_unit * 100.0).round() / 100.0),
                    Value::Float(self.uniform(7, key, 8, 0, 10) as f64 / 100.0),
                    Value::Float(self.uniform(7, key, 9, 0, 8) as f64 / 100.0),
                    Value::str(self.pick(7, key, 10, &["R", "A", "N"])),
                    Value::str(self.pick(7, key, 11, &["O", "F"])),
                    Value::Date(ship),
                    Value::Date(commit),
                    Value::Date(receipt),
                    Value::str(self.pick(7, key, 12, &SHIP_INSTRUCT)),
                    Value::str(self.pick(7, key, 13, &SHIP_MODES)),
                    Value::str(self.comment(7, key, 14)),
                ]);
            }
        }
        rows
    }
}

fn phone(h: u64) -> String {
    format!(
        "{}-{:03}-{:03}-{:04}",
        10 + h % 25,
        mix(h) % 1000,
        mix(h ^ 1) % 1000,
        mix(h ^ 2) % 10_000
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen() -> TpchGen {
        TpchGen::new(0.01)
    }

    #[test]
    fn cardinalities_scale() {
        let g = gen();
        assert_eq!(g.row_count(TpchTable::Region), 5);
        assert_eq!(g.row_count(TpchTable::Nation), 25);
        assert_eq!(g.row_count(TpchTable::Customer), 1500);
        assert_eq!(g.row_count(TpchTable::Orders), 15_000);
        assert_eq!(g.row_count(TpchTable::Supplier), 100);
        assert_eq!(g.row_count(TpchTable::Part), 2000);
        assert_eq!(g.row_count(TpchTable::PartSupp), 8000);
        let l = g.row_count(TpchTable::Lineitem);
        // ~4 lines per order on average.
        assert!((45_000..75_000).contains(&l), "{l}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen().table(TpchTable::Orders);
        let b = gen().table(TpchTable::Orders);
        assert_eq!(a.row(0), b.row(0));
        assert_eq!(a.row(a.len() - 1), b.row(b.len() - 1));
        // Different seed → different data.
        let c = TpchGen::with_seed(0.01, 7).table(TpchTable::Orders);
        assert_ne!(a.row(0), c.row(0));
    }

    #[test]
    fn row_counts_match_generated() {
        let g = gen();
        for t in TpchTable::ALL {
            assert_eq!(
                g.table(t).len() as u64,
                g.row_count(t),
                "count mismatch for {t:?}"
            );
        }
    }

    #[test]
    fn foreign_keys_are_in_range() {
        let g = gen();
        let customers = g.customers() as i64;
        for row in g.table(TpchTable::Orders).rows() {
            let ck = row[1].as_int().unwrap();
            assert!((1..=customers).contains(&ck));
        }
        let parts = g.parts() as i64;
        let supps = g.suppliers() as i64;
        for row in g.table(TpchTable::Lineitem).rows().take(5000) {
            assert!((1..=parts).contains(&row[1].as_int().unwrap()));
            assert!((1..=supps).contains(&row[2].as_int().unwrap()));
        }
        for row in g.table(TpchTable::Nation).rows() {
            assert!((0..5).contains(&row[2].as_int().unwrap()));
        }
    }

    #[test]
    fn lineitem_dates_follow_order_dates() {
        let g = gen();
        let orders = g.table(TpchTable::Orders);
        let odate: std::collections::HashMap<i64, i32> = orders
            .rows()
            .map(|r| (r[0].as_int().unwrap(), r[4].as_date().unwrap()))
            .collect();
        for row in g.table(TpchTable::Lineitem).rows().take(5000) {
            let o = row[0].as_int().unwrap();
            let ship = row[10].as_date().unwrap();
            let receipt = row[12].as_date().unwrap();
            assert!(ship > odate[&o], "ship date before order date");
            assert!(receipt > ship);
        }
    }

    #[test]
    fn q9_green_fraction_reasonable() {
        let g = gen();
        let parts = g.table(TpchTable::Part);
        let green = parts
            .rows()
            .filter(|r| r[1].as_str().unwrap().contains("green"))
            .count();
        let frac = green as f64 / parts.len() as f64;
        assert!((0.02..0.25).contains(&frac), "{frac}");
    }

    #[test]
    fn q8_economy_anodized_steel_exists() {
        let g = gen();
        let parts = g.table(TpchTable::Part);
        assert!(parts
            .rows()
            .any(|r| r[4].as_str().unwrap() == "ECONOMY ANODIZED STEEL"));
    }

    #[test]
    fn mktsegment_building_exists() {
        let g = gen();
        let customers = g.table(TpchTable::Customer);
        let building = customers
            .rows()
            .filter(|r| r[6].as_str().unwrap() == "BUILDING")
            .count();
        assert!(building > 100);
    }

    #[test]
    fn partsupp_has_four_distinct_suppliers_per_part() {
        let g = gen();
        let ps = g.table(TpchTable::PartSupp);
        let mut by_part: std::collections::HashMap<i64, std::collections::HashSet<i64>> =
            std::collections::HashMap::new();
        for row in ps.rows() {
            by_part
                .entry(row[0].as_int().unwrap())
                .or_default()
                .insert(row[1].as_int().unwrap());
        }
        let distinct4 = by_part.values().filter(|s| s.len() == 4).count();
        // The overwhelming majority of parts must have 4 distinct
        // suppliers (tiny scale factors may collide occasionally).
        assert!(distinct4 as f64 > 0.9 * by_part.len() as f64);
    }
}
