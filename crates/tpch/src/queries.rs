//! The paper's cross-database workload: TPC-H queries Q3, Q5, Q7, Q8, Q9,
//! and Q10 with their spec-default substitution parameters (chosen in the
//! paper "based on the number of joins ... ranging from three to eight").

/// The evaluated queries, in the paper's order, plus four extended-workload
/// queries (Q1/Q6/Q12/Q14) beyond the paper's set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TpchQuery {
    Q1,
    Q3,
    Q4,
    Q5,
    Q6,
    Q7,
    Q8,
    Q9,
    Q10,
    Q12,
    Q14,
    Q18,
}

impl TpchQuery {
    /// The paper's evaluation set (Section VI-A).
    pub const ALL: [TpchQuery; 6] = [
        TpchQuery::Q3,
        TpchQuery::Q5,
        TpchQuery::Q7,
        TpchQuery::Q8,
        TpchQuery::Q9,
        TpchQuery::Q10,
    ];

    /// Extended workload beyond the paper: single-table aggregations
    /// (Q1, Q6 — single-task delegation plans) and two-relation joins
    /// (Q12, Q14).
    pub const EXTENDED: [TpchQuery; 6] = [
        TpchQuery::Q1,
        TpchQuery::Q4,
        TpchQuery::Q6,
        TpchQuery::Q12,
        TpchQuery::Q14,
        TpchQuery::Q18,
    ];

    pub fn name(self) -> &'static str {
        match self {
            TpchQuery::Q1 => "Q1",
            TpchQuery::Q3 => "Q3",
            TpchQuery::Q4 => "Q4",
            TpchQuery::Q18 => "Q18",
            TpchQuery::Q5 => "Q5",
            TpchQuery::Q6 => "Q6",
            TpchQuery::Q7 => "Q7",
            TpchQuery::Q8 => "Q8",
            TpchQuery::Q9 => "Q9",
            TpchQuery::Q10 => "Q10",
            TpchQuery::Q12 => "Q12",
            TpchQuery::Q14 => "Q14",
        }
    }

    /// Number of join relations, as the paper reports them.
    pub fn join_count(self) -> usize {
        match self {
            TpchQuery::Q1 | TpchQuery::Q6 => 1,
            TpchQuery::Q4 | TpchQuery::Q12 | TpchQuery::Q14 => 2,
            TpchQuery::Q18 => 3,
            TpchQuery::Q3 => 3,
            TpchQuery::Q5 => 6,
            TpchQuery::Q7 => 5,
            TpchQuery::Q8 => 8,
            TpchQuery::Q9 => 6,
            TpchQuery::Q10 => 4,
        }
    }

    /// Table abbreviations (Table III letters) this query touches.
    pub fn tables(self) -> &'static [&'static str] {
        match self {
            TpchQuery::Q1 | TpchQuery::Q6 => &["l"],
            TpchQuery::Q4 => &["o", "l"],
            TpchQuery::Q18 => &["c", "o", "l"],
            TpchQuery::Q12 => &["o", "l"],
            TpchQuery::Q14 => &["l", "p"],
            TpchQuery::Q3 => &["c", "o", "l"],
            TpchQuery::Q5 => &["c", "o", "l", "s", "n", "r"],
            TpchQuery::Q7 => &["s", "l", "o", "c", "n"],
            TpchQuery::Q8 => &["p", "s", "l", "o", "c", "n", "r"],
            TpchQuery::Q9 => &["p", "s", "l", "ps", "o", "n"],
            TpchQuery::Q10 => &["c", "o", "l", "n"],
        }
    }

    pub fn sql(self) -> &'static str {
        match self {
            TpchQuery::Q1 => Q1_SQL,
            TpchQuery::Q4 => Q4_SQL,
            TpchQuery::Q18 => Q18_SQL,
            TpchQuery::Q6 => Q6_SQL,
            TpchQuery::Q12 => Q12_SQL,
            TpchQuery::Q14 => Q14_SQL,
            TpchQuery::Q3 => Q3_SQL,
            TpchQuery::Q5 => Q5_SQL,
            TpchQuery::Q7 => Q7_SQL,
            TpchQuery::Q8 => Q8_SQL,
            TpchQuery::Q9 => Q9_SQL,
            TpchQuery::Q10 => Q10_SQL,
        }
    }
}

/// Q1 — Pricing Summary Report (single relation; the delegation plan is a
/// single task on lineitem's home DBMS).
pub const Q1_SQL: &str = "\
select l_returnflag, l_linestatus,
       sum(l_quantity) as sum_qty,
       sum(l_extendedprice) as sum_base_price,
       sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge,
       avg(l_quantity) as avg_qty,
       avg(l_extendedprice) as avg_price,
       avg(l_discount) as avg_disc,
       count(*) as count_order
from lineitem
where l_shipdate <= date '1998-12-01' - interval '90' day
group by l_returnflag, l_linestatus
order by l_returnflag, l_linestatus";

/// Q4 — Order Priority Checking (correlated EXISTS → semi join).
pub const Q4_SQL: &str = "\
select o_orderpriority, count(*) as order_count
from orders
where o_orderdate >= date '1993-07-01'
  and o_orderdate < date '1993-07-01' + interval '3' month
  and exists (
    select * from lineitem
    where l_orderkey = o_orderkey and l_commitdate < l_receiptdate
  )
group by o_orderpriority
order by o_orderpriority";

/// Q18 — Large Volume Customer (uncorrelated IN over an aggregating
/// subquery → semi join).
pub const Q18_SQL: &str = "\
select c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, sum(l_quantity) as total_qty
from customer, orders, lineitem
where o_orderkey in (
    select l_orderkey from lineitem group by l_orderkey having sum(l_quantity) > 212
  )
  and c_custkey = o_custkey
  and o_orderkey = l_orderkey
group by c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
order by o_totalprice desc, o_orderdate
limit 100";

/// Q6 — Forecasting Revenue Change (single relation).
pub const Q6_SQL: &str = "\
select sum(l_extendedprice * l_discount) as revenue
from lineitem
where l_shipdate >= date '1994-01-01'
  and l_shipdate < date '1994-01-01' + interval '1' year
  and l_discount between 0.05 and 0.07
  and l_quantity < 24";

/// Q12 — Shipping Modes and Order Priority (2 relations).
pub const Q12_SQL: &str = "\
select l_shipmode,
       sum(case when o_orderpriority = '1-URGENT' or o_orderpriority = '2-HIGH'
                then 1 else 0 end) as high_line_count,
       sum(case when o_orderpriority <> '1-URGENT' and o_orderpriority <> '2-HIGH'
                then 1 else 0 end) as low_line_count
from orders, lineitem
where o_orderkey = l_orderkey
  and l_shipmode in ('MAIL', 'SHIP')
  and l_commitdate < l_receiptdate
  and l_shipdate < l_commitdate
  and l_receiptdate >= date '1994-01-01'
  and l_receiptdate < date '1994-01-01' + interval '1' year
group by l_shipmode
order by l_shipmode";

/// Q14 — Promotion Effect (2 relations, aggregate-over-aggregate
/// arithmetic).
pub const Q14_SQL: &str = "\
select 100.00 * sum(case when p_type like 'PROMO%'
                         then l_extendedprice * (1 - l_discount) else 0 end)
       / sum(l_extendedprice * (1 - l_discount)) as promo_revenue
from lineitem, part
where l_partkey = p_partkey
  and l_shipdate >= date '1995-09-01'
  and l_shipdate < date '1995-09-01' + interval '1' month";

/// Q3 — Shipping Priority (3 relations).
pub const Q3_SQL: &str = "\
select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue, o_orderdate, o_shippriority
from customer, orders, lineitem
where c_mktsegment = 'BUILDING'
  and c_custkey = o_custkey
  and l_orderkey = o_orderkey
  and o_orderdate < date '1995-03-15'
  and l_shipdate > date '1995-03-15'
group by l_orderkey, o_orderdate, o_shippriority
order by revenue desc, o_orderdate
limit 10";

/// Q5 — Local Supplier Volume (6 relations).
pub const Q5_SQL: &str = "\
select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue
from customer, orders, lineitem, supplier, nation, region
where c_custkey = o_custkey
  and l_orderkey = o_orderkey
  and l_suppkey = s_suppkey
  and c_nationkey = s_nationkey
  and s_nationkey = n_nationkey
  and n_regionkey = r_regionkey
  and r_name = 'ASIA'
  and o_orderdate >= date '1994-01-01'
  and o_orderdate < date '1994-01-01' + interval '1' year
group by n_name
order by revenue desc";

/// Q7 — Volume Shipping (5 relations, self-joined nation).
pub const Q7_SQL: &str = "\
select supp_nation, cust_nation, l_year, sum(volume) as revenue
from (
  select n1.n_name as supp_nation, n2.n_name as cust_nation,
         extract(year from l_shipdate) as l_year,
         l_extendedprice * (1 - l_discount) as volume
  from supplier, lineitem, orders, customer, nation n1, nation n2
  where s_suppkey = l_suppkey
    and o_orderkey = l_orderkey
    and c_custkey = o_custkey
    and s_nationkey = n1.n_nationkey
    and c_nationkey = n2.n_nationkey
    and ((n1.n_name = 'FRANCE' and n2.n_name = 'GERMANY')
      or (n1.n_name = 'GERMANY' and n2.n_name = 'FRANCE'))
    and l_shipdate between date '1995-01-01' and date '1996-12-31'
) as shipping
group by supp_nation, cust_nation, l_year
order by supp_nation, cust_nation, l_year";

/// Q8 — National Market Share (8 relations).
pub const Q8_SQL: &str = "\
select o_year, sum(case when nation = 'BRAZIL' then volume else 0 end) / sum(volume) as mkt_share
from (
  select extract(year from o_orderdate) as o_year,
         l_extendedprice * (1 - l_discount) as volume,
         n2.n_name as nation
  from part, supplier, lineitem, orders, customer, nation n1, nation n2, region
  where p_partkey = l_partkey
    and s_suppkey = l_suppkey
    and l_orderkey = o_orderkey
    and o_custkey = c_custkey
    and c_nationkey = n1.n_nationkey
    and n1.n_regionkey = r_regionkey
    and r_name = 'AMERICA'
    and s_nationkey = n2.n_nationkey
    and o_orderdate between date '1995-01-01' and date '1996-12-31'
    and p_type = 'ECONOMY ANODIZED STEEL'
) as all_nations
group by o_year
order by o_year";

/// Q9 — Product Type Profit Measure (6 relations).
pub const Q9_SQL: &str = "\
select nation, o_year, sum(amount) as sum_profit
from (
  select n_name as nation, extract(year from o_orderdate) as o_year,
         l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity as amount
  from part, supplier, lineitem, partsupp, orders, nation
  where s_suppkey = l_suppkey
    and ps_suppkey = l_suppkey
    and ps_partkey = l_partkey
    and p_partkey = l_partkey
    and o_orderkey = l_orderkey
    and s_nationkey = n_nationkey
    and p_name like '%green%'
) as profit
group by nation, o_year
order by nation, o_year desc";

/// Q10 — Returned Item Reporting (4 relations).
pub const Q10_SQL: &str = "\
select c_custkey, c_name, sum(l_extendedprice * (1 - l_discount)) as revenue,
       c_acctbal, n_name, c_address, c_phone, c_comment
from customer, orders, lineitem, nation
where c_custkey = o_custkey
  and l_orderkey = o_orderkey
  and o_orderdate >= date '1993-10-01'
  and o_orderdate < date '1993-10-01' + interval '3' month
  and l_returnflag = 'R'
  and c_nationkey = n_nationkey
group by c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment
order by revenue desc
limit 20";

#[cfg(test)]
mod tests {
    use super::*;
    use xdb_sql::parse_select;

    #[test]
    fn all_queries_parse() {
        for q in TpchQuery::ALL.iter().chain(&TpchQuery::EXTENDED) {
            parse_select(q.sql()).unwrap_or_else(|e| panic!("{} failed: {e}", q.name()));
        }
    }

    #[test]
    fn join_counts_match_table_counts_roughly() {
        for q in TpchQuery::ALL.iter().copied().chain(TpchQuery::EXTENDED) {
            assert!(!q.tables().is_empty());
            assert!(q.join_count() + 2 >= q.tables().len());
        }
    }
}
