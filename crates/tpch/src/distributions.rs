//! Table distributions over the seven-DBMS testbed (Table III of the
//! paper) and cluster loading.

use crate::dbgen::TpchGen;
use crate::schema::TpchTable;
use xdb_engine::cluster::Cluster;
use xdb_engine::error::Result;
use xdb_engine::profile::EngineProfile;
use xdb_net::{Scenario, Topology};

/// The seven DBMS nodes of the paper's testbed.
pub const NODES: [&str; 7] = ["db1", "db2", "db3", "db4", "db5", "db6", "db7"];

/// Table distributions of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableDist {
    Td1,
    Td2,
    Td3,
}

impl TableDist {
    pub const ALL: [TableDist; 3] = [TableDist::Td1, TableDist::Td2, TableDist::Td3];

    pub fn name(self) -> &'static str {
        match self {
            TableDist::Td1 => "TD1",
            TableDist::Td2 => "TD2",
            TableDist::Td3 => "TD3",
        }
    }

    /// `(node, tables-by-abbreviation)` rows, verbatim from Table III.
    pub fn placement(self) -> &'static [(&'static str, &'static [&'static str])] {
        match self {
            TableDist::Td1 => &[
                ("db1", &["l"]),
                ("db2", &["c", "o"]),
                ("db3", &["s", "n", "r"]),
                ("db4", &["p", "ps"]),
            ],
            TableDist::Td2 => &[
                ("db1", &["l", "s"]),
                ("db2", &["o", "n", "r"]),
                ("db3", &["c"]),
                ("db4", &["p", "ps"]),
            ],
            TableDist::Td3 => &[
                ("db1", &["l"]),
                ("db2", &["o"]),
                ("db3", &["s"]),
                ("db4", &["ps"]),
                ("db5", &["c"]),
                ("db6", &["p"]),
                ("db7", &["n", "r"]),
            ],
        }
    }

    /// Node a given table lives on.
    pub fn node_of(self, table: TpchTable) -> &'static str {
        for (node, abbrevs) in self.placement() {
            if abbrevs.contains(&table.abbrev()) {
                return node;
            }
        }
        unreachable!("every table is placed")
    }
}

/// Per-node engine profiles; defaults to PostgreSQL everywhere (the
/// paper's main setup). The heterogeneous setup of Fig 10 uses MariaDB for
/// db2 and Hive for db3.
#[derive(Debug, Clone)]
pub struct ProfileAssignment {
    pub default: EngineProfile,
    pub overrides: Vec<(&'static str, EngineProfile)>,
}

impl ProfileAssignment {
    pub fn uniform(profile: EngineProfile) -> ProfileAssignment {
        ProfileAssignment {
            default: profile,
            overrides: Vec::new(),
        }
    }

    /// The Fig 10 heterogeneous assignment: "MariaDB for db2, Hive for
    /// db3, and PostgreSQL for all other dbs".
    pub fn heterogeneous() -> ProfileAssignment {
        ProfileAssignment {
            default: EngineProfile::postgres(),
            overrides: vec![
                ("db2", EngineProfile::mariadb()),
                ("db3", EngineProfile::hive()),
            ],
        }
    }

    fn for_node(&self, node: &str) -> EngineProfile {
        self.overrides
            .iter()
            .find(|(n, _)| *n == node)
            .map(|(_, p)| p.clone())
            .unwrap_or_else(|| self.default.clone())
    }
}

/// Build the seven-node cluster, generate TPC-H data at `scale`, and load
/// each table onto its TD node.
pub fn build_cluster(
    dist: TableDist,
    scale: f64,
    scenario: Scenario,
    profiles: &ProfileAssignment,
) -> Result<Cluster> {
    let topology = match scenario {
        Scenario::OnPremise => Topology::lan(&NODES),
        Scenario::GeoDistributed => Topology::geo(&NODES),
    };
    let mut cluster = Cluster::new(topology);
    for node in NODES {
        cluster.add_engine(node, profiles.for_node(node));
    }
    load_tables(&cluster, dist, scale)?;
    Ok(cluster)
}

/// Generate and load all eight tables into an existing cluster.
pub fn load_tables(cluster: &Cluster, dist: TableDist, scale: f64) -> Result<()> {
    let gen = TpchGen::new(scale);
    for table in TpchTable::ALL {
        let node = dist.node_of(table);
        cluster
            .engine(node)?
            .load_table(table.name(), gen.table(table))?;
    }
    Ok(())
}

/// Load every table onto a single node (the "localized tables" oracle and
/// mediator-side baselines).
pub fn load_all_on(cluster: &Cluster, node: &str, scale: f64) -> Result<()> {
    let gen = TpchGen::new(scale);
    for table in TpchTable::ALL {
        cluster
            .engine(node)?
            .load_table(table.name(), gen.table(table))?;
    }
    Ok(())
}

/// Render Table III as text (for the repro binary).
pub fn render_table3() -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<6}", ""));
    for node in NODES {
        out.push_str(&format!("{node:>8}"));
    }
    out.push('\n');
    for dist in TableDist::ALL {
        out.push_str(&format!("{:<6}", dist.name()));
        for node in NODES {
            let tables: Vec<&str> = dist
                .placement()
                .iter()
                .filter(|(n, _)| *n == node)
                .flat_map(|(_, ts)| ts.iter().copied())
                .collect();
            let cell = if tables.is_empty() {
                "-".to_string()
            } else {
                tables.join(",")
            };
            out.push_str(&format!("{cell:>8}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table_placed_once_per_dist() {
        for dist in TableDist::ALL {
            for t in TpchTable::ALL {
                let homes: Vec<&str> = dist
                    .placement()
                    .iter()
                    .filter(|(_, ts)| ts.contains(&t.abbrev()))
                    .map(|(n, _)| *n)
                    .collect();
                assert_eq!(homes.len(), 1, "{dist:?} {t:?} -> {homes:?}");
            }
        }
    }

    #[test]
    fn td3_spreads_over_seven_nodes() {
        assert_eq!(TableDist::Td3.placement().len(), 7);
        assert_eq!(TableDist::Td1.placement().len(), 4);
    }

    #[test]
    fn build_and_query_cluster() {
        let cluster = build_cluster(
            TableDist::Td1,
            0.001,
            Scenario::OnPremise,
            &ProfileAssignment::uniform(EngineProfile::postgres()),
        )
        .unwrap();
        // lineitem lives on db1 under TD1.
        let (rel, _) = cluster
            .query("db1", "SELECT count(*) AS n FROM lineitem")
            .unwrap();
        assert!(rel.value(0, 0).as_int().unwrap() > 0);
        // customer lives on db2, not db1.
        assert!(cluster
            .query("db1", "SELECT count(*) FROM customer")
            .is_err());
        assert!(cluster
            .query("db2", "SELECT count(*) FROM customer")
            .is_ok());
    }

    #[test]
    fn heterogeneous_profiles_assign() {
        let p = ProfileAssignment::heterogeneous();
        assert_eq!(p.for_node("db2").vendor, "mariadb");
        assert_eq!(p.for_node("db3").vendor, "hive");
        assert_eq!(p.for_node("db1").vendor, "postgres");
    }

    #[test]
    fn table3_renders() {
        let t = render_table3();
        assert!(t.contains("TD1"));
        assert!(t.contains("c,o"));
        assert!(t.contains("n,r"));
    }
}
