//! TPC-H schema (the eight tables of the benchmark, full column sets).

use xdb_sql::value::DataType;

/// The eight TPC-H tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TpchTable {
    Region,
    Nation,
    Supplier,
    Part,
    PartSupp,
    Customer,
    Orders,
    Lineitem,
}

impl TpchTable {
    pub const ALL: [TpchTable; 8] = [
        TpchTable::Region,
        TpchTable::Nation,
        TpchTable::Supplier,
        TpchTable::Part,
        TpchTable::PartSupp,
        TpchTable::Customer,
        TpchTable::Orders,
        TpchTable::Lineitem,
    ];

    pub fn name(self) -> &'static str {
        match self {
            TpchTable::Region => "region",
            TpchTable::Nation => "nation",
            TpchTable::Supplier => "supplier",
            TpchTable::Part => "part",
            TpchTable::PartSupp => "partsupp",
            TpchTable::Customer => "customer",
            TpchTable::Orders => "orders",
            TpchTable::Lineitem => "lineitem",
        }
    }

    /// The paper's single-letter table abbreviations (Table III).
    pub fn abbrev(self) -> &'static str {
        match self {
            TpchTable::Region => "r",
            TpchTable::Nation => "n",
            TpchTable::Supplier => "s",
            TpchTable::Part => "p",
            TpchTable::PartSupp => "ps",
            TpchTable::Customer => "c",
            TpchTable::Orders => "o",
            TpchTable::Lineitem => "l",
        }
    }

    pub fn from_abbrev(s: &str) -> Option<TpchTable> {
        TpchTable::ALL.iter().copied().find(|t| t.abbrev() == s)
    }

    /// Column names and types.
    pub fn columns(self) -> Vec<(String, DataType)> {
        use DataType::*;
        let cols: &[(&str, DataType)] = match self {
            TpchTable::Region => &[("r_regionkey", Int), ("r_name", Str), ("r_comment", Str)],
            TpchTable::Nation => &[
                ("n_nationkey", Int),
                ("n_name", Str),
                ("n_regionkey", Int),
                ("n_comment", Str),
            ],
            TpchTable::Supplier => &[
                ("s_suppkey", Int),
                ("s_name", Str),
                ("s_address", Str),
                ("s_nationkey", Int),
                ("s_phone", Str),
                ("s_acctbal", Float),
                ("s_comment", Str),
            ],
            TpchTable::Part => &[
                ("p_partkey", Int),
                ("p_name", Str),
                ("p_mfgr", Str),
                ("p_brand", Str),
                ("p_type", Str),
                ("p_size", Int),
                ("p_container", Str),
                ("p_retailprice", Float),
                ("p_comment", Str),
            ],
            TpchTable::PartSupp => &[
                ("ps_partkey", Int),
                ("ps_suppkey", Int),
                ("ps_availqty", Int),
                ("ps_supplycost", Float),
                ("ps_comment", Str),
            ],
            TpchTable::Customer => &[
                ("c_custkey", Int),
                ("c_name", Str),
                ("c_address", Str),
                ("c_nationkey", Int),
                ("c_phone", Str),
                ("c_acctbal", Float),
                ("c_mktsegment", Str),
                ("c_comment", Str),
            ],
            TpchTable::Orders => &[
                ("o_orderkey", Int),
                ("o_custkey", Int),
                ("o_orderstatus", Str),
                ("o_totalprice", Float),
                ("o_orderdate", Date),
                ("o_orderpriority", Str),
                ("o_clerk", Str),
                ("o_shippriority", Int),
                ("o_comment", Str),
            ],
            TpchTable::Lineitem => &[
                ("l_orderkey", Int),
                ("l_partkey", Int),
                ("l_suppkey", Int),
                ("l_linenumber", Int),
                ("l_quantity", Float),
                ("l_extendedprice", Float),
                ("l_discount", Float),
                ("l_tax", Float),
                ("l_returnflag", Str),
                ("l_linestatus", Str),
                ("l_shipdate", Date),
                ("l_commitdate", Date),
                ("l_receiptdate", Date),
                ("l_shipinstruct", Str),
                ("l_shipmode", Str),
                ("l_comment", Str),
            ],
        };
        cols.iter().map(|(n, t)| (n.to_string(), *t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abbrev_roundtrip() {
        for t in TpchTable::ALL {
            assert_eq!(TpchTable::from_abbrev(t.abbrev()), Some(t));
        }
        assert_eq!(TpchTable::from_abbrev("zz"), None);
    }

    #[test]
    fn lineitem_has_sixteen_columns() {
        assert_eq!(TpchTable::Lineitem.columns().len(), 16);
        assert_eq!(TpchTable::Region.columns().len(), 3);
    }
}
