//! The `Strategy` trait and the built-in strategies the workspace uses.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// Something that can produce random values of an associated type.
///
/// Unlike real proptest there is no value tree and no shrinking; a strategy
/// is just a deterministic function of the RNG state.
pub trait Strategy {
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erase into a clonable, shareable strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(move |rng| self.new_value(rng))
    }

    /// Map generated values through a function.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized + 'static,
        U: 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        BoxedStrategy::new(move |rng| f(self.new_value(rng)))
    }

    /// Build a recursive strategy: `self` generates leaves, `branch` wraps
    /// an inner strategy into one level of structure. `depth` bounds the
    /// nesting; the size/branch hints are accepted for API compatibility
    /// but unused (no shrinking, no size accounting).
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let wrapped = branch(strat).boxed();
            // Mix leaves back in at every level so shallow values stay
            // reachable and generation terminates.
            strat = Union::new(vec![leaf.clone(), wrapped]).boxed();
        }
        strat
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T> {
    gen_fn: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen_fn: Rc::clone(&self.gen_fn),
        }
    }
}

impl<T> BoxedStrategy<T> {
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy { gen_fn: Rc::new(f) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }

    fn boxed(self) -> BoxedStrategy<T>
    where
        Self: Sized + 'static,
    {
        self
    }
}

/// Uniform choice among a set of strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].new_value(rng)
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub fn any<T: Arbitrary + 'static>() -> BoxedStrategy<T> {
    BoxedStrategy::new(T::arbitrary)
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}
arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, reasonably spread values; property tests here never need
        // NaN/inf edge cases from `any`.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    if span <= 0 {
                        return self.start;
                    }
                    let off = (rng.next_u64() as u128 % span as u128) as i128;
                    ((self.start as i128) + off) as $t
                }
            }
        )*
    };
}
range_strategy_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        if self.end <= self.start {
            return self.start;
        }
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Char-class pattern strategy for `&'static str` literals, e.g.
/// `"[a-z][a-z0-9_]{0,8}"`. Supported: literal chars, `[...]` classes with
/// ranges, and `{lo,hi}` / `{n}` quantifiers on the preceding atom.
impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0usize;
    while i < chars.len() {
        // One atom: a class or a literal char.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let mut class = Vec::new();
            i += 1;
            while i < chars.len() && chars[i] != ']' {
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let (lo, hi) = (chars[i], chars[i + 2]);
                    for c in lo..=hi {
                        class.push(c);
                    }
                    i += 3;
                } else {
                    class.push(chars[i]);
                    i += 1;
                }
            }
            i += 1; // closing ']'
            class
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Optional quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            i += 1;
            let mut lo = 0usize;
            while i < chars.len() && chars[i].is_ascii_digit() {
                lo = lo * 10 + chars[i] as usize - '0' as usize;
                i += 1;
            }
            let hi = if i < chars.len() && chars[i] == ',' {
                i += 1;
                let mut hi = 0usize;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    hi = hi * 10 + chars[i] as usize - '0' as usize;
                    i += 1;
                }
                hi
            } else {
                lo
            };
            i += 1; // closing '}'
            (lo, hi)
        } else {
            (1, 1)
        };
        if alphabet.is_empty() {
            continue;
        }
        let count = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..count {
            let j = rng.below(alphabet.len() as u64) as usize;
            out.push(alphabet[j]);
        }
    }
    out
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*
    };
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic(42)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (-5i64..5).new_value(&mut r);
            assert!((-5..5).contains(&v));
            let u = (0u8..4).new_value(&mut r);
            assert!(u < 4);
            let f = (0.0f64..100.0).new_value(&mut r);
            assert!((0.0..100.0).contains(&f));
        }
    }

    #[test]
    fn pattern_generates_within_class() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,8}".new_value(&mut r);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
        let s = "abc".new_value(&mut r);
        assert_eq!(s, "abc");
        let s = "[a-c]{1,3}".new_value(&mut r);
        assert!((1..=3).contains(&s.len()));
        assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
    }

    #[test]
    fn union_and_map_and_recursion() {
        let mut r = rng();
        let s = crate::prop_oneof![Just(1i32), Just(2i32)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.new_value(&mut r));
        }
        assert_eq!(seen.len(), 2);

        let doubled = (0i32..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            assert_eq!(doubled.new_value(&mut r) % 2, 0);
        }

        // Recursive depth stays bounded.
        #[derive(Debug)]
        enum Tree {
            Leaf,
            Node(Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(i) => 1 + depth(i),
            }
        }
        let t = Just(())
            .prop_map(|_| Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| inner.prop_map(|i| Tree::Node(Box::new(i))));
        for _ in 0..100 {
            assert!(depth(&t.new_value(&mut r)) <= 3);
        }
    }
}
