//! Deterministic test runner support: configuration, case errors, RNG.

/// Runner configuration; only `cases` is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is discarded, not counted.
    Reject(String),
    /// `prop_assert*!` failed; the test fails.
    Fail(String),
}

/// Deterministic splitmix64/xorshift generator: case `i` always produces
/// the same inputs, so failures reproduce without recording seeds.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(case: u64) -> TestRng {
        // splitmix64 of the case index gives well-spread starting states.
        let mut z = case.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        TestRng {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*.
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::deterministic(7);
        let mut b = TestRng::deterministic(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::deterministic(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_in_range() {
        let mut r = TestRng::deterministic(0);
        for _ in 0..1000 {
            let f = r.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
