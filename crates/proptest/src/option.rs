//! Option strategies (`prop::option::of`).

use crate::strategy::{BoxedStrategy, Strategy};

/// `None` or `Some` of the inner strategy, even odds.
pub fn of<S>(inner: S) -> BoxedStrategy<Option<S::Value>>
where
    S: Strategy + 'static,
    S::Value: 'static,
{
    BoxedStrategy::new(move |rng| {
        if rng.bool() {
            Some(inner.new_value(rng))
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn produces_both_variants() {
        let s = of(0i32..10);
        let mut rng = TestRng::deterministic(3);
        let mut some = 0;
        let mut none = 0;
        for _ in 0..200 {
            match s.new_value(&mut rng) {
                Some(v) => {
                    assert!((0..10).contains(&v));
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0);
    }
}
