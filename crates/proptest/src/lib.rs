//! Workspace-local stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the slice of the proptest API the workspace's property tests use:
//! the `Strategy` trait with `prop_map`/`prop_recursive`/`boxed`,
//! strategies for numeric ranges, tuples, `Just`, `any::<T>()`, char-class
//! string patterns, `prop::collection::vec`, `prop::option::of`, and the
//! `proptest!`/`prop_oneof!`/`prop_assert!`/`prop_assert_eq!`/`prop_assume!`
//! macros.
//!
//! Generation is deterministic: case `i` of every test derives its RNG seed
//! from `i` alone, so failures reproduce across runs. Shrinking is not
//! implemented — failing cases are reported as generated.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    // Real proptest's prelude re-exports the crate under the name `prop`,
    // which is how `prop::collection::vec(...)` resolves.
    pub use crate as prop;
}

/// `prop_oneof![a, b, c]`: choose uniformly among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

/// `proptest! { #![proptest_config(cfg)] #[test] fn name(x in strat, ...) { .. } }`
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                let __strats = ( $( ($strat) , )+ );
                let mut __rejected: u32 = 0;
                let mut __case: u64 = 0;
                let mut __ran: u32 = 0;
                while __ran < __cfg.cases {
                    if __rejected > __cfg.cases * 16 + 1024 {
                        panic!(
                            "proptest {}: too many rejected cases ({})",
                            stringify!($name),
                            __rejected
                        );
                    }
                    let mut __rng = $crate::test_runner::TestRng::deterministic(__case);
                    __case += 1;
                    let ( $( $arg , )+ ) = {
                        let ( $( ref $arg , )+ ) = __strats;
                        ( $( $crate::strategy::Strategy::new_value($arg, &mut __rng) , )+ )
                    };
                    let __outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match __outcome {
                        Ok(()) => { __ran += 1; }
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            __rejected += 1;
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {}: {}",
                                stringify!($name),
                                __case - 1,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $fmt:expr $(, $args:expr)* $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: {}: {}",
                    stringify!($cond),
                    format!($fmt $(, $args)*)
                ),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} == {:?}", __a, __b),
            ));
        }
    }};
    ($a:expr, $b:expr, $fmt:expr $(, $args:expr)* $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: {:?} == {:?}: {}",
                    __a,
                    __b,
                    format!($fmt $(, $args)*)
                ),
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {:?} != {:?}",
                __a, __b
            )));
        }
    }};
}

/// Discard the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
