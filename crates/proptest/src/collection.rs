//! Collection strategies (`prop::collection::vec`).

use crate::strategy::{BoxedStrategy, Strategy};
use std::ops::Range;

/// A vector whose length is drawn from `len` and whose elements come from
/// `element`.
pub fn vec<S>(element: S, len: Range<usize>) -> BoxedStrategy<Vec<S::Value>>
where
    S: Strategy + 'static,
    S::Value: 'static,
{
    BoxedStrategy::new(move |rng| {
        let n = len.new_value(rng);
        (0..n).map(|_| element.new_value(rng)).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_respects_length_range() {
        let s = vec(0i32..100, 1..5);
        let mut rng = TestRng::deterministic(1);
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0..100).contains(x)));
        }
    }
}
