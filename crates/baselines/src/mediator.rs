//! The Mediator-Wrapper execution strategy (Section II-B, Figure 4a):
//! decompose a cross-database query into per-DBMS *local* sub-queries plus
//! a *global* fragment, push the sub-queries to the DBMSes through
//! wrappers, fetch all intermediate results into the mediator, and finish
//! the cross-database operations centrally.
//!
//! Decomposition reuses XDB's annotator with
//! [`PlacementPolicy::Mediator`]: every cross-database operator is
//! annotated with the mediator node, so the finalized "delegation plan"
//! degenerates into exactly the MW shape — leaf tasks are the pushed-down
//! sub-queries and the root task is the mediator's residual plan.

use xdb_core::annotate::{AnnotateOptions, Annotator, PlacementPolicy};
use xdb_core::global::GlobalCatalog;
use xdb_core::plan::{placeholder_name, DelegationPlan};
use xdb_engine::cluster::{Cluster, ScopedCluster};
use xdb_engine::error::{EngineError, Result};
use xdb_engine::exec::{Execution, MapResolver};
use xdb_engine::profile::EngineProfile;
use xdb_engine::relation::Relation;
use xdb_net::{mediator_finish, params, wire, NodeId, Purpose};
use xdb_obs::{QueryTrace, SpanKind, TraceCollector};
use xdb_sql::algebra::plan_to_select;
use xdb_sql::ast::Statement;
use xdb_sql::bind::bind_select;
use xdb_sql::display::render_select_string;
use xdb_sql::optimize::{optimize, OptimizeOptions};

/// Configuration of one MW system.
#[derive(Debug, Clone)]
pub struct MediatorConfig {
    /// System label for reports.
    pub name: &'static str,
    /// Node the mediator runs on (accounted for all fetches).
    pub node: NodeId,
    /// Execution profile of the mediator engine.
    pub profile: EngineProfile,
    /// Worker nodes executing the mediator's residual plan (Presto
    /// scale-out; 1 = single-node Garlic).
    pub workers: usize,
    /// Whether wrappers can push co-located joins down to the DBMSes
    /// (Garlic can, Presto-style connectors cannot).
    pub pushdown_joins: bool,
    /// Per-byte multiplier of the wrapper fetch protocol (binary vs JDBC).
    pub protocol_overhead: f64,
}

impl MediatorConfig {
    /// Our implementation of the well-known Garlic approach: a single
    /// PostgreSQL-like mediator using binary transfer protocols that
    /// pushes selections, projections, and co-located joins.
    pub fn garlic(node: impl Into<String>) -> MediatorConfig {
        MediatorConfig {
            name: "garlic",
            node: NodeId::new(node),
            profile: EngineProfile::postgres(),
            workers: 1,
            pushdown_joins: true,
            protocol_overhead: params::BINARY_PROTOCOL_OVERHEAD,
        }
    }

    /// Presto/Trino-like scaled-out mediator: JDBC connectors (scan /
    /// filter / projection pushdown only) and `workers` parallel workers.
    pub fn presto(node: impl Into<String>, workers: usize) -> MediatorConfig {
        MediatorConfig {
            name: "presto",
            node: NodeId::new(node),
            profile: EngineProfile::postgres(),
            workers: workers.max(1),
            pushdown_joins: false,
            protocol_overhead: params::JDBC_PROTOCOL_OVERHEAD,
        }
    }
}

/// Parallel-speedup model for the mediator's residual work: near-linear
/// with a coordination tax (the paper's Fig 11 shows the *processing* part
/// shrinking with workers while the fetch bottleneck stays).
fn parallel_work_ms(raw_ms: f64, workers: usize) -> f64 {
    raw_ms / (workers as f64).powf(0.85)
}

/// Report of one MW query execution.
#[derive(Debug, Clone)]
pub struct MwReport {
    pub relation: Relation,
    /// End-to-end simulated time.
    pub total_ms: f64,
    /// Portion of `total_ms` attributable to moving intermediate data to
    /// the mediator (the μ of Fig 1/9, measured exactly by re-composing
    /// with free transfers).
    pub transfer_ms: f64,
    /// Mediator-side residual execution time.
    pub mediator_work_ms: f64,
    /// Raw (uncompressed) bytes fetched into the mediator.
    pub fetch_bytes: u64,
    /// Encoded bytes after the shared `net::wire` codec — the size the
    /// simulated fetch transfers actually paid for (apples-to-apples with
    /// XDB's streamed edges).
    pub fetch_encoded_bytes: u64,
    pub fetch_rows: u64,
    pub subqueries: usize,
    /// Coarse span timeline of the MW execution (sub-query pushes, fetches
    /// into the mediator, residual work) for side-by-side comparison with
    /// XDB traces.
    pub trace: QueryTrace,
}

/// A mediator-wrapper federation frontend.
pub struct Mediator<'a> {
    cluster: &'a Cluster,
    catalog: &'a GlobalCatalog,
    config: MediatorConfig,
}

impl<'a> Mediator<'a> {
    pub fn new(
        cluster: &'a Cluster,
        catalog: &'a GlobalCatalog,
        config: MediatorConfig,
    ) -> Mediator<'a> {
        Mediator {
            cluster,
            catalog,
            config,
        }
    }

    pub fn config(&self) -> &MediatorConfig {
        &self.config
    }

    /// Coarse fleet telemetry for one MW submission — emitted once from
    /// the (single-threaded) tail of `submit`, so it is deterministic.
    fn note_submit(
        &self,
        total_ms: f64,
        fetch_bytes: u64,
        fetch_encoded_bytes: u64,
        subqueries: usize,
    ) {
        let telemetry = self.cluster.telemetry();
        let labels = [("system", self.config.name)];
        telemetry.metrics.observe("mw.total_ms", &labels, total_ms);
        telemetry.metrics.counter_add("mw.queries", &labels, 1.0);
        telemetry
            .metrics
            .counter_add("mw.fetch_bytes", &labels, fetch_bytes as f64);
        telemetry.metrics.counter_add(
            "mw.fetch_encoded_bytes",
            &labels,
            fetch_encoded_bytes as f64,
        );
        let bytes = fetch_bytes.to_string();
        let subs = subqueries.to_string();
        telemetry.events.log(
            xdb_obs::Level::Info,
            "baselines.mediator",
            None,
            total_ms,
            "mediator query completed",
            &[
                ("system", self.config.name),
                ("fetch_bytes", &bytes),
                ("subqueries", &subs),
            ],
        );
    }

    /// Decompose a query into the MW plan: sub-query tasks + mediator
    /// residual.
    pub fn decompose(&self, sql: &str) -> Result<DelegationPlan> {
        let stmt = xdb_sql::parse_statement(sql)?;
        let Statement::Select(select) = stmt else {
            return Err(EngineError::Unsupported(
                "mediator accepts SELECT queries only".into(),
            ));
        };
        for t in self.catalog.table_names() {
            self.catalog.consult(self.cluster, &t)?;
        }
        let bound = bind_select(&select, self.catalog)?;
        let optimized = optimize(bound, self.catalog, OptimizeOptions::default());
        self.catalog.clear_placeholders();
        let annotation = Annotator::new(
            self.catalog,
            self.cluster,
            AnnotateOptions {
                placement: PlacementPolicy::Mediator(self.config.node.clone()),
                no_colocated_fusion: !self.config.pushdown_joins,
                ..Default::default()
            },
        )
        .run(&optimized)?;
        Ok(annotation.plan)
    }

    /// Execute a query MW-style.
    pub fn submit(&self, sql: &str) -> Result<MwReport> {
        let plan = self.decompose(sql)?;
        let root = plan.task(plan.root);

        // 1. Push the sub-queries down and fetch their results. The
        // fetches are independent leaf queries, so they run concurrently —
        // one thread per fragment, each recording into a scratch ledger —
        // and are merged back in topographic order so the ledger and the
        // simulated accounting are identical to a sequential pass.
        let collector = TraceCollector::new();
        let query_span = collector.span(
            SpanKind::Query,
            "mw query",
            self.config.name,
            None,
            0.0,
            0.0,
        );
        collector.attr(query_span, "sql", sql);
        collector.attr(query_span, "mediator", self.config.node.as_str());
        let mut fetched = MapResolver::new();
        let mut fetches: Vec<(f64, f64)> = Vec::new();
        // Per-fragment (task id, dbms, finish_ms, transfer_ms, bytes,
        // encoded bytes, rows) kept aside for span emission once the
        // totals are known.
        #[allow(clippy::type_complexity)]
        let mut fragment_stats: Vec<(usize, NodeId, f64, f64, u64, u64, u64)> = Vec::new();
        let mut fetch_bytes = 0u64;
        let mut fetch_encoded_bytes = 0u64;
        let mut fetch_rows = 0u64;
        let mut subqueries = 0usize;
        let leaf_ids: Vec<usize> = plan
            .topo_order()
            .into_iter()
            .filter(|id| *id != plan.root)
            .collect();
        let cluster = self.cluster;
        let fragments: Vec<Result<_>> = std::thread::scope(|s| {
            let handles: Vec<_> = leaf_ids
                .iter()
                .map(|&id| {
                    let task = plan.task(id);
                    let config = &self.config;
                    s.spawn(move || {
                        let dialect = cluster.engine(task.dbms.as_str())?.profile.dialect;
                        let stmt = plan_to_select(&task.plan)?;
                        let task_sql = render_select_string(&stmt, dialect);
                        let scoped = ScopedCluster::new(cluster);
                        let outcome = cluster.with_step_lock(task.dbms.as_str(), || {
                            scoped.execute(task.dbms.as_str(), &task_sql)
                        })?;
                        let rel = outcome.relation.ok_or_else(|| {
                            EngineError::Execution("sub-query returned no relation".into())
                        })?;
                        let bytes = rel.wire_bytes();
                        // Fragment fetches ride the same wire codec as
                        // XDB's streamed edges: the transfer is charged
                        // for encoded bytes. The mediator keeps the
                        // relation it already holds (`decode(encode(x))`
                        // is exactly `x`), so a sizing-only pass prices
                        // the edge without materializing the payload.
                        let chunk_rows = cluster.engine(task.dbms.as_str())?.stream_chunk_rows();
                        let stats = wire::measure(rel.columns(), rel.len()).stats(chunk_rows);
                        scoped.ledger.record_wire(
                            &task.dbms,
                            &config.node,
                            bytes,
                            rel.len() as u64,
                            Purpose::SubqueryResult,
                            &stats,
                        );
                        let transfer = cluster.topology.transfer_ms(
                            &task.dbms,
                            &config.node,
                            stats.encoded_bytes,
                            config.protocol_overhead,
                        );
                        Ok((
                            rel,
                            outcome.report.finish_ms,
                            transfer,
                            scoped.ledger,
                            stats.encoded_bytes,
                        ))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fragment fetch thread panicked"))
                .collect()
        });
        for (id, fragment) in leaf_ids.into_iter().zip(fragments) {
            let (rel, finish_ms, transfer, ledger, encoded) = fragment?;
            self.cluster.ledger.absorb(&ledger);
            let bytes = rel.wire_bytes();
            fetches.push((finish_ms, transfer));
            fragment_stats.push((
                id,
                plan.task(id).dbms.clone(),
                finish_ms,
                transfer,
                bytes,
                encoded,
                rel.len() as u64,
            ));
            fetch_bytes += bytes;
            fetch_encoded_bytes += encoded;
            fetch_rows += rel.len() as u64;
            subqueries += 1;
            fetched.insert(placeholder_name(id), rel);
        }

        // 2. Single-DBMS query: the "residual" runs remotely; the mediator
        // only relays the final result.
        if root.dbms != self.config.node {
            debug_assert!(plan.tasks.len() == 1);
            let dialect = self.cluster.engine(root.dbms.as_str())?.profile.dialect;
            let stmt = plan_to_select(&root.plan)?;
            let (rel, report) = self
                .cluster
                .query(root.dbms.as_str(), &render_select_string(&stmt, dialect))?;
            let bytes = rel.wire_bytes();
            let chunk_rows = self.cluster.engine(root.dbms.as_str())?.stream_chunk_rows();
            let stats = wire::measure(rel.columns(), rel.len()).stats(chunk_rows);
            let encoded = stats.encoded_bytes;
            self.cluster.ledger.record_wire(
                &root.dbms,
                &self.config.node,
                bytes,
                rel.len() as u64,
                Purpose::SubqueryResult,
                &stats,
            );
            let transfer = self.cluster.topology.transfer_ms(
                &root.dbms,
                &self.config.node,
                encoded,
                self.config.protocol_overhead,
            );
            let total_ms = params::DDL_ROUNDTRIP_MS + report.finish_ms + transfer;
            let task_span = collector.span(
                SpanKind::Task,
                format!("subquery t{}", plan.root),
                root.dbms.as_str(),
                Some(query_span),
                params::DDL_ROUNDTRIP_MS,
                report.finish_ms,
            );
            collector.attr(task_span, "rows", rel.len().to_string());
            let wire = collector.span(
                SpanKind::Transfer,
                format!("{} -> {}", root.dbms, self.config.node),
                "net",
                Some(query_span),
                params::DDL_ROUNDTRIP_MS + report.finish_ms,
                transfer,
            );
            collector.attr(wire, "bytes", bytes.to_string());
            collector.attr(wire, "encoded_bytes", encoded.to_string());
            collector.set_dur(query_span, total_ms);
            collector.add("fetch.bytes", bytes as f64);
            collector.add("fetch.encoded_bytes", encoded as f64);
            collector.add("fetch.rows", rel.len() as f64);
            collector.add("subqueries", 1.0);
            self.note_submit(total_ms, bytes, encoded, 1);
            return Ok(MwReport {
                total_ms,
                transfer_ms: transfer,
                mediator_work_ms: 0.0,
                fetch_bytes: bytes,
                fetch_encoded_bytes: encoded,
                fetch_rows: rel.len() as u64,
                subqueries: 1,
                relation: rel,
                trace: collector.finish(),
            });
        }

        // 3. The mediator executes the residual plan over the fetched
        // intermediates.
        let mut exec = Execution::new(&fetched);
        let relation = exec.run(&root.plan)?;
        let raw_work = self
            .config
            .profile
            .work_ms(exec.scan_units, exec.olap_units);
        let mut mediator_work_ms = parallel_work_ms(raw_work, self.config.workers);
        // Scale-out exchange: repartitioning the fetched data across
        // workers costs wire time and shows up in the ledger.
        if self.config.workers > 1 {
            let exchange_bytes = (fetch_bytes as f64 * (self.config.workers as f64 - 1.0)
                / self.config.workers as f64) as u64;
            for w in 1..self.config.workers {
                self.cluster.ledger.record(
                    &self.config.node,
                    &NodeId::new(format!("{}-w{w}", self.config.node)),
                    exchange_bytes / (self.config.workers as u64 - 1).max(1),
                    0,
                    Purpose::WorkerExchange,
                );
            }
            mediator_work_ms += exchange_bytes as f64 / params::LAN_BANDWIDTH_BYTES_PER_MS;
        }
        let startup =
            self.config.profile.startup_ms * (1.0 + 0.2 * (self.config.workers as f64 - 1.0));
        // Each sub-query submission is one wrapper round-trip, like XDB's
        // DDL round-trips.
        let submission_ms = (subqueries as f64 + 1.0) * params::DDL_ROUNDTRIP_MS;
        let total_ms = submission_ms + mediator_finish(startup, mediator_work_ms, &fetches);
        // μ: re-compose with free transfers — the "localized tables"
        // methodology of Section VI-A.
        let free: Vec<(f64, f64)> = fetches.iter().map(|(f, _)| (*f, 0.0)).collect();
        let transfer_ms = total_ms - mediator_finish(startup, mediator_work_ms, &free);

        // Coarse timeline: wrapper submissions first, then per-fragment
        // sub-query + fetch lanes, then the mediator's residual work
        // finishing at `total_ms`.
        for (k, (id, dbms, finish_ms, transfer, bytes, encoded, rows)) in
            fragment_stats.iter().enumerate()
        {
            let push = collector.span(
                SpanKind::Ddl,
                format!("push subquery t{id}"),
                self.config.name,
                Some(query_span),
                k as f64 * params::DDL_ROUNDTRIP_MS,
                params::DDL_ROUNDTRIP_MS,
            );
            collector.attr(push, "dbms", dbms.as_str());
            let task_span = collector.span(
                SpanKind::Task,
                format!("subquery t{id}"),
                dbms.as_str(),
                Some(query_span),
                submission_ms,
                *finish_ms,
            );
            collector.attr(task_span, "rows", rows.to_string());
            let wire = collector.span(
                SpanKind::Transfer,
                format!("{} -> {}", dbms, self.config.node),
                "net",
                Some(query_span),
                submission_ms + finish_ms,
                *transfer,
            );
            collector.attr(wire, "bytes", bytes.to_string());
            collector.attr(wire, "encoded_bytes", encoded.to_string());
            collector.attr(wire, "rows", rows.to_string());
        }
        let work_span = collector.span(
            SpanKind::Exec,
            "mediator residual",
            self.config.name,
            Some(query_span),
            total_ms - mediator_work_ms,
            mediator_work_ms,
        );
        collector.attr(work_span, "workers", self.config.workers.to_string());
        collector.set_dur(query_span, total_ms);
        collector.add("fetch.bytes", fetch_bytes as f64);
        collector.add("fetch.encoded_bytes", fetch_encoded_bytes as f64);
        collector.add("fetch.rows", fetch_rows as f64);
        collector.add("subqueries", subqueries as f64);
        self.note_submit(total_ms, fetch_bytes, fetch_encoded_bytes, subqueries);
        Ok(MwReport {
            relation,
            total_ms,
            transfer_ms,
            mediator_work_ms,
            fetch_bytes,
            fetch_encoded_bytes,
            fetch_rows,
            subqueries,
            trace: collector.finish(),
        })
    }
}

/// Sanity helper shared by tests/benches: the per-subquery relations of a
/// decomposition never contain placeholders.
pub fn assert_subqueries_pure(plan: &DelegationPlan) {
    for task in &plan.tasks {
        if task.id == plan.root {
            continue;
        }
        let mut stack = vec![&task.plan];
        while let Some(p) = stack.pop() {
            assert!(
                !matches!(p, xdb_sql::algebra::LogicalPlan::Placeholder { .. }),
                "sub-query task t{} contains a placeholder",
                task.id
            );
            stack.extend(p.children());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdb_core::scenario::{self, ScenarioConfig};

    fn setup() -> (Cluster, GlobalCatalog) {
        scenario::build(ScenarioConfig::default()).unwrap()
    }

    #[test]
    fn garlic_decomposition_pushes_colocated_joins() {
        let (cluster, catalog) = setup();
        let m = Mediator::new(&cluster, &catalog, MediatorConfig::garlic("mediator"));
        let plan = m.decompose(scenario::EXAMPLE_QUERY).unwrap();
        assert_subqueries_pure(&plan);
        // Root is the mediator; sub-queries are one per DBMS (vaccines +
        // vaccination fused on vdb).
        assert_eq!(plan.task(plan.root).dbms.as_str(), "mediator");
        assert_eq!(plan.tasks.len(), 4, "{}", plan.describe());
    }

    #[test]
    fn presto_decomposition_does_not_fuse_joins() {
        let (cluster, catalog) = setup();
        let m = Mediator::new(&cluster, &catalog, MediatorConfig::presto("mediator", 4));
        let plan = m.decompose(scenario::EXAMPLE_QUERY).unwrap();
        assert_subqueries_pure(&plan);
        // One sub-query per base table + the mediator root.
        assert_eq!(plan.tasks.len(), 5, "{}", plan.describe());
    }

    #[test]
    fn mediator_matches_xdb_results() {
        let (cluster, catalog) = setup();
        let xdb = xdb_core::Xdb::new(&cluster, &catalog);
        let expected = xdb.submit(scenario::EXAMPLE_QUERY).unwrap().relation;
        for config in [
            MediatorConfig::garlic("mediator"),
            MediatorConfig::presto("mediator", 4),
        ] {
            let m = Mediator::new(&cluster, &catalog, config);
            let report = m.submit(scenario::EXAMPLE_QUERY).unwrap();
            assert!(
                report.relation.same_bag(&expected),
                "{} diverged from XDB",
                m.config().name
            );
        }
    }

    #[test]
    fn mediator_fetches_more_than_xdb_moves() {
        let (cluster, catalog) = setup();
        let m = Mediator::new(&cluster, &catalog, MediatorConfig::garlic("mediator"));
        let report = m.submit(scenario::EXAMPLE_QUERY).unwrap();
        let mw_bytes = report.fetch_bytes;
        cluster.ledger.clear();
        let xdb = xdb_core::Xdb::new(&cluster, &catalog);
        xdb.submit(scenario::EXAMPLE_QUERY).unwrap();
        let xdb_bytes = cluster.ledger.bytes_for(Purpose::InterDbmsPipeline)
            + cluster.ledger.bytes_for(Purpose::Materialization);
        assert!(
            mw_bytes > xdb_bytes,
            "MW should move more: {mw_bytes} vs {xdb_bytes}"
        );
    }

    #[test]
    fn transfer_dominates_mw_total() {
        // The Fig 1 observation: most of the MW total is data movement.
        // Needs realistic data volume for the wire to matter.
        let (cluster, catalog) = scenario::build(ScenarioConfig {
            citizens: 20_000,
            vaccination_events: 40_000,
            measurements: 120_000,
            ..Default::default()
        })
        .unwrap();
        let m = Mediator::new(&cluster, &catalog, MediatorConfig::presto("mediator", 4));
        let report = m.submit(scenario::EXAMPLE_QUERY).unwrap();
        assert!(
            report.transfer_ms > 0.3 * report.total_ms,
            "transfer {} of total {}",
            report.transfer_ms,
            report.total_ms
        );
    }

    #[test]
    fn workers_speed_up_processing_not_fetching() {
        let (cluster, catalog) = setup();
        let few = Mediator::new(&cluster, &catalog, MediatorConfig::presto("mediator", 2))
            .submit(scenario::EXAMPLE_QUERY)
            .unwrap();
        let many = Mediator::new(&cluster, &catalog, MediatorConfig::presto("mediator", 10))
            .submit(scenario::EXAMPLE_QUERY)
            .unwrap();
        assert!(many.mediator_work_ms < few.mediator_work_ms);
        // Fetch volume identical regardless of worker count.
        assert_eq!(many.fetch_bytes, few.fetch_bytes);
    }

    #[test]
    fn single_dbms_query_runs_remotely() {
        let (cluster, catalog) = setup();
        let m = Mediator::new(&cluster, &catalog, MediatorConfig::garlic("mediator"));
        let report = m
            .submit("SELECT count(*) AS n FROM citizen WHERE age > 50")
            .unwrap();
        assert_eq!(report.subqueries, 1);
        assert_eq!(report.mediator_work_ms, 0.0);
        assert_eq!(report.relation.len(), 1);
    }
}
