//! A ScleraDB-like baseline (Section VI-B): "in-situ" in the sense that
//! joins run inside DBMSes, but *naive* in the sense of Section V's
//! strawman — every intermediate relation is exported to the mediator and
//! re-imported into the target DBMS (explicitly materialized), with a
//! heuristic (left-input) choice of join placement and strictly serial
//! task execution. The paper measures this approach at up to 30× slower
//! than XDB.

use std::collections::HashMap;
use xdb_core::annotate::{AnnotateOptions, Annotator, PlacementPolicy};
use xdb_core::global::GlobalCatalog;
use xdb_core::plan::placeholder_name;
use xdb_engine::cluster::Cluster;
use xdb_engine::error::{EngineError, Result};
use xdb_engine::relation::Relation;
use xdb_net::{wire, Movement, NodeId, Purpose};
use xdb_obs::{QueryTrace, SpanKind, TraceCollector};
use xdb_sql::algebra::plan_to_select;
use xdb_sql::ast::Statement;
use xdb_sql::bind::bind_select;
use xdb_sql::display::render_select_string;
use xdb_sql::optimize::{optimize, OptimizeOptions};

/// Report of one Sclera-style execution.
#[derive(Debug, Clone)]
pub struct ScleraReport {
    pub relation: Relation,
    pub total_ms: f64,
    /// Time spent exporting/importing intermediates through the mediator.
    pub transfer_ms: f64,
    /// Raw bytes moved through the mediator (each intermediate counted on
    /// both hops).
    pub moved_bytes: u64,
    /// Encoded bytes moved after the shared `net::wire` codec (both hops)
    /// — the size the simulated transfers actually paid for.
    pub moved_encoded_bytes: u64,
    pub tasks: usize,
    /// Coarse span timeline of the serial export/import/execute loop for
    /// side-by-side comparison with XDB traces.
    pub trace: QueryTrace,
}

/// The Sclera-like frontend.
pub struct Sclera<'a> {
    cluster: &'a Cluster,
    catalog: &'a GlobalCatalog,
    mediator: NodeId,
}

impl<'a> Sclera<'a> {
    pub fn new(
        cluster: &'a Cluster,
        catalog: &'a GlobalCatalog,
        mediator: impl Into<String>,
    ) -> Sclera<'a> {
        Sclera {
            cluster,
            catalog,
            mediator: NodeId::new(mediator),
        }
    }

    pub fn submit(&self, sql: &str) -> Result<ScleraReport> {
        let stmt = xdb_sql::parse_statement(sql)?;
        let Statement::Select(select) = stmt else {
            return Err(EngineError::Unsupported(
                "sclera accepts SELECT queries only".into(),
            ));
        };
        for t in self.catalog.table_names() {
            self.catalog.consult(self.cluster, &t)?;
        }
        let bound = bind_select(&select, self.catalog)?;
        // ScleraDB-style rule-based optimization: joins are ordered but
        // intermediate relations keep their full width (no projection
        // pushdown across the federation) — every exported table carries
        // all columns through the mediator.
        let optimized = optimize(
            bound,
            self.catalog,
            OptimizeOptions {
                reorder_joins: true,
                prune_columns: false,
                ..Default::default()
            },
        );
        self.catalog.clear_placeholders();
        let annotation = Annotator::new(
            self.catalog,
            self.cluster,
            AnnotateOptions {
                placement: PlacementPolicy::LeftInput,
                force_movement: Some(Movement::Explicit),
                ..Default::default()
            },
        )
        .run(&optimized)?;
        let plan = annotation.plan;

        // Strictly serial task execution; every inter-task relation takes
        // two hops (producer → mediator → consumer) and is materialized at
        // the consumer.
        let collector = TraceCollector::new();
        let query_span = collector.span(SpanKind::Query, "sclera query", "sclera", None, 0.0, 0.0);
        collector.attr(query_span, "sql", sql);
        collector.attr(query_span, "mediator", self.mediator.as_str());
        let mut outputs: HashMap<usize, Relation> = HashMap::new();
        let mut total_ms = 0.0f64;
        let mut transfer_ms = 0.0f64;
        let mut moved_bytes = 0u64;
        let mut moved_encoded_bytes = 0u64;
        let mut temp_tables: Vec<(NodeId, String)> = Vec::new();
        let mut result = None;
        for id in plan.topo_order() {
            let task = plan.task(id);
            let engine = self.cluster.engine(task.dbms.as_str())?;
            // Import dependencies.
            for edge in plan.in_edges(id) {
                let rel = outputs
                    .get(&edge.from)
                    .cloned()
                    .ok_or_else(|| EngineError::Execution("missing task output".into()))?;
                let bytes = rel.wire_bytes();
                let producer = &plan.task(edge.from).dbms;
                // Both hops ride the shared wire codec; the exported
                // relation is re-encoded for each hop (Sclera's mediator
                // decodes and re-encodes, it does not relay frames). Both
                // hops carry the same relation, so one sizing pass prices
                // them both — and since `decode(encode(x))` rebuilds `x`
                // exactly, the consumer loads the relation this process
                // already holds instead of round-tripping the codec.
                let chunk_rows = engine.stream_chunk_rows();
                let stats = wire::measure(rel.columns(), rel.len()).stats(chunk_rows);
                self.cluster.ledger.record_wire(
                    producer,
                    &self.mediator,
                    bytes,
                    rel.len() as u64,
                    Purpose::Materialization,
                    &stats,
                );
                self.cluster.ledger.record_wire(
                    &self.mediator,
                    &task.dbms,
                    bytes,
                    rel.len() as u64,
                    Purpose::Materialization,
                    &stats,
                );
                let hop1 = self.cluster.topology.transfer_ms(
                    producer,
                    &self.mediator,
                    stats.encoded_bytes,
                    xdb_net::params::BINARY_PROTOCOL_OVERHEAD,
                );
                let hop2 = self.cluster.topology.transfer_ms(
                    &self.mediator,
                    &task.dbms,
                    stats.encoded_bytes,
                    xdb_net::params::BINARY_PROTOCOL_OVERHEAD,
                );
                let import = rel.len() as f64 * engine.profile.write_cost_ms;
                // Two serial hops through the mediator, then the
                // client-driven re-import at the consumer.
                let wire = collector.span(
                    SpanKind::Transfer,
                    format!("{} -> {} -> {}", producer, self.mediator, task.dbms),
                    "net",
                    Some(query_span),
                    total_ms,
                    hop1 + hop2,
                );
                collector.attr(wire, "bytes", (bytes * 2).to_string());
                collector.attr(wire, "encoded_bytes", (stats.encoded_bytes * 2).to_string());
                collector.attr(wire, "rows", rel.len().to_string());
                collector.attr(wire, "movement", "explicit");
                let mat = collector.span(
                    SpanKind::Exec,
                    format!("import t{}", edge.from),
                    task.dbms.as_str(),
                    Some(query_span),
                    total_ms + hop1 + hop2,
                    import + 2.0 * xdb_net::params::DDL_ROUNDTRIP_MS,
                );
                collector.attr(mat, "rows", rel.len().to_string());
                transfer_ms += hop1 + hop2;
                // Export + import are separate client-driven statements.
                total_ms += hop1 + hop2 + import + 2.0 * xdb_net::params::DDL_ROUNDTRIP_MS;
                moved_bytes += bytes * 2;
                moved_encoded_bytes += stats.encoded_bytes * 2;
                let temp = placeholder_name(edge.from);
                engine.load_table(&temp, rel)?;
                temp_tables.push((task.dbms.clone(), temp));
            }
            // The task body references `__task_k` placeholders by exactly
            // the temp-table names just loaded.
            let stmt = plan_to_select(&task.plan)?;
            let task_sql = render_select_string(&stmt, engine.profile.dialect);
            let (rel, report) = self.cluster.query(task.dbms.as_str(), &task_sql)?;
            let task_span = collector.span(
                SpanKind::Task,
                format!("task t{id}"),
                task.dbms.as_str(),
                Some(query_span),
                total_ms + xdb_net::params::DDL_ROUNDTRIP_MS,
                report.finish_ms,
            );
            collector.attr(task_span, "rows", rel.len().to_string());
            total_ms += report.finish_ms + xdb_net::params::DDL_ROUNDTRIP_MS;
            if id == plan.root {
                result = Some(rel);
            } else {
                outputs.insert(id, rel);
            }
        }
        // Drop all temp tables.
        for (node, name) in temp_tables {
            let _ = self
                .cluster
                .execute(node.as_str(), &format!("DROP TABLE IF EXISTS {name}"));
        }
        collector.set_dur(query_span, total_ms);
        collector.add("moved.bytes", moved_bytes as f64);
        collector.add("moved.encoded_bytes", moved_encoded_bytes as f64);
        collector.add("tasks", plan.tasks.len() as f64);
        // Coarse fleet telemetry (serial executor: deterministic by
        // construction).
        let telemetry = self.cluster.telemetry();
        let labels = [("system", "sclera")];
        telemetry.metrics.observe("mw.total_ms", &labels, total_ms);
        telemetry.metrics.counter_add("mw.queries", &labels, 1.0);
        telemetry
            .metrics
            .counter_add("mw.fetch_bytes", &labels, moved_bytes as f64);
        telemetry.metrics.counter_add(
            "mw.fetch_encoded_bytes",
            &labels,
            moved_encoded_bytes as f64,
        );
        let bytes = moved_bytes.to_string();
        let tasks = plan.tasks.len().to_string();
        telemetry.events.log(
            xdb_obs::Level::Info,
            "baselines.sclera",
            None,
            total_ms,
            "sclera query completed",
            &[("moved_bytes", &bytes), ("tasks", &tasks)],
        );
        Ok(ScleraReport {
            relation: result.ok_or_else(|| EngineError::Execution("no root output".into()))?,
            total_ms,
            transfer_ms,
            moved_bytes,
            moved_encoded_bytes,
            tasks: plan.tasks.len(),
            trace: collector.finish(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdb_core::scenario::{self, ScenarioConfig};

    fn setup() -> (Cluster, GlobalCatalog) {
        scenario::build(ScenarioConfig::default()).unwrap()
    }

    #[test]
    fn sclera_matches_xdb_results() {
        let (cluster, catalog) = setup();
        let expected = xdb_core::Xdb::new(&cluster, &catalog)
            .submit(scenario::EXAMPLE_QUERY)
            .unwrap()
            .relation;
        let sclera = Sclera::new(&cluster, &catalog, "mediator");
        let report = sclera.submit(scenario::EXAMPLE_QUERY).unwrap();
        assert!(report.relation.same_bag(&expected));
    }

    #[test]
    fn sclera_is_slower_than_xdb() {
        // Needs realistic volume: at toy scale fixed round-trips dominate.
        let (cluster, catalog) = scenario::build(ScenarioConfig {
            citizens: 20_000,
            vaccination_events: 40_000,
            measurements: 120_000,
            ..Default::default()
        })
        .unwrap();
        let xdb_exec = xdb_core::Xdb::new(&cluster, &catalog)
            .submit(scenario::EXAMPLE_QUERY)
            .unwrap()
            .breakdown
            .exec_ms;
        let report = Sclera::new(&cluster, &catalog, "mediator")
            .submit(scenario::EXAMPLE_QUERY)
            .unwrap();
        assert!(
            report.total_ms > xdb_exec,
            "sclera {} vs xdb {}",
            report.total_ms,
            xdb_exec
        );
    }

    #[test]
    fn intermediates_double_hop() {
        let (cluster, catalog) = setup();
        cluster.ledger.clear();
        let report = Sclera::new(&cluster, &catalog, "mediator")
            .submit(scenario::EXAMPLE_QUERY)
            .unwrap();
        // Every byte into the mediator leaves it again.
        let into_med = cluster.ledger.bytes_into(&NodeId::new("mediator"));
        assert_eq!(report.moved_bytes, 2 * into_med);
        assert!(report.transfer_ms > 0.0);
    }

    #[test]
    fn double_hop_encodes_and_charges_each_hop_exactly_once() {
        // Reactor-era audit: chunk handoff across threads owns the codec
        // state, so the double-hop path must still price each hop with
        // exactly one encoding pass. Every intermediate takes two ledger
        // records (producer -> mediator, mediator -> consumer) carrying
        // the same relation, hence the same encoded size; the
        // `net.encoded_bytes` series must equal the per-hop ledger sum —
        // no hop double-charged, none coalesced.
        let (mut cluster, catalog) = setup();
        let telemetry = xdb_obs::Telemetry::new_handle();
        cluster.set_telemetry(std::sync::Arc::clone(&telemetry));
        cluster.ledger.clear();
        let report = Sclera::new(&cluster, &catalog, "mediator")
            .submit(scenario::EXAMPLE_QUERY)
            .unwrap();

        let mediator = NodeId::new("mediator");
        let hops: Vec<_> = cluster
            .ledger
            .snapshot()
            .into_iter()
            .filter(|t| t.purpose == Purpose::Materialization)
            .collect();
        assert!(!hops.is_empty(), "no materialization hops recorded");
        assert_eq!(hops.len() % 2, 0, "unpaired hop: {hops:?}");
        let mut per_hop_encoded = 0u64;
        for pair in hops.chunks(2) {
            let (into, out) = (&pair[0], &pair[1]);
            // Hops are recorded in order: into the mediator, then out.
            assert_eq!(into.to, mediator, "{into:?}");
            assert_eq!(out.from, mediator, "{out:?}");
            // Same relation on both hops: same raw and encoded size, and
            // the codec actually ran (0 < encoded <= raw).
            assert_eq!(into.bytes, out.bytes);
            assert_eq!(into.encoded_bytes, out.encoded_bytes);
            assert!(into.encoded_bytes > 0 && into.encoded_bytes <= into.bytes);
            per_hop_encoded += into.encoded_bytes + out.encoded_bytes;
        }
        // The report and the telemetry series both equal the per-hop sum:
        // each hop charged exactly once.
        assert_eq!(report.moved_encoded_bytes, per_hop_encoded);
        assert_eq!(
            telemetry.metrics.value(
                "net.encoded_bytes",
                &[("purpose", Purpose::Materialization.label())]
            ),
            per_hop_encoded as f64
        );
    }

    #[test]
    fn temp_tables_are_dropped() {
        let (cluster, catalog) = setup();
        Sclera::new(&cluster, &catalog, "mediator")
            .submit(scenario::EXAMPLE_QUERY)
            .unwrap();
        for node in ["cdb", "vdb", "hdb"] {
            let names = cluster.engine(node).unwrap().with_catalog(|c| c.names());
            assert!(
                names.iter().all(|n| !n.starts_with("__task_")),
                "{node} leaked {names:?}"
            );
        }
    }
}
