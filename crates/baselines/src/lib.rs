//! # xdb-baselines
//!
//! The systems the paper evaluates XDB against, re-implemented as
//! execution *strategies* over the same engine/network substrate so the
//! comparison isolates exactly what the paper studies — where
//! cross-database operations run and how intermediate data moves:
//!
//! - [`mediator`]: the Mediator-Wrapper architecture. `MediatorConfig::garlic`
//!   is the single-node Garlic-like system (binary protocol, co-located
//!   join pushdown); `MediatorConfig::presto` is the Presto/Trino-like
//!   scaled-out mediator (JDBC connectors, N workers).
//! - [`sclera`]: the ScleraDB-like naive in-situ system that moves every
//!   intermediate explicitly through its mediator with heuristic join
//!   placement.

pub mod mediator;
pub mod sclera;

pub use mediator::{Mediator, MediatorConfig, MwReport};
pub use sclera::{Sclera, ScleraReport};
