//! # xdb-sql
//!
//! SQL frontend and relational IR for the XDB federation:
//!
//! - [`value`]: runtime values, data types, and calendar-date arithmetic;
//! - [`lexer`] / [`parser`]: a hand-written SQL parser for the analytical
//!   dialect shared by every system in the federation;
//! - [`ast`]: the statement/expression AST, designed to round-trip through
//!   [`display`] so that delegation-by-query-rewriting is lossless;
//! - [`algebra`]: the logical relational algebra that local engines execute
//!   and the XDB cross-database optimizer annotates, with lowering back to
//!   SQL ([`algebra::plan_to_select`]).

pub mod algebra;
pub mod ast;
pub mod bind;
pub mod column;
pub mod display;
pub mod hash;
pub mod lexer;
pub mod optimize;
pub mod parser;
pub mod stats;
pub mod value;

pub use ast::{Expr, SelectStmt, Statement};
pub use column::{Bitmap, Column, ColumnBuilder, SchemaIndex, TypedCol};
pub use display::Dialect;
pub use parser::{parse_expr, parse_script, parse_select, parse_statement, ParseError};
pub use value::{DataType, Value};
