//! Statistics interfaces and cardinality estimation.
//!
//! Both the local engines (for their own EXPLAIN-style costing) and the XDB
//! cross-database optimizer (which *consults* engines for statistics,
//! Section IV-B2) estimate plan cardinalities with the textbook heuristics
//! below. Keeping one implementation ensures that local and cross-database
//! cost estimates are comparable — the paper's "same cost unit" requirement
//! (footnote 6) — leaving calibration to scale factors only.

use crate::algebra::{LogicalPlan, PlanSchema};
use crate::ast::{BinaryOp, Expr};
use crate::value::Value;

/// Per-column statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Estimated number of distinct values.
    pub n_distinct: f64,
    pub min: Option<Value>,
    pub max: Option<Value>,
}

/// Source of base-relation statistics, keyed by relation name.
pub trait StatsProvider {
    /// Row count of a base relation, if known.
    fn table_rows(&self, relation: &str) -> Option<f64>;

    /// Column statistics of a base relation, if known.
    fn column_stats(&self, relation: &str, column: &str) -> Option<ColumnStats>;
}

/// Provider that knows nothing; estimation falls back to defaults.
pub struct NoStats;

impl StatsProvider for NoStats {
    fn table_rows(&self, _relation: &str) -> Option<f64> {
        None
    }

    fn column_stats(&self, _relation: &str, _column: &str) -> Option<ColumnStats> {
        None
    }
}

/// Default row count assumed for relations without statistics.
pub const DEFAULT_TABLE_ROWS: f64 = 1000.0;
/// Default selectivity of an equality predicate without statistics.
pub const DEFAULT_EQ_SELECTIVITY: f64 = 0.1;
/// Default selectivity of a range predicate.
pub const DEFAULT_RANGE_SELECTIVITY: f64 = 0.33;
/// Default selectivity of a LIKE predicate.
pub const DEFAULT_LIKE_SELECTIVITY: f64 = 0.05;

/// Cardinality estimator over logical plans.
pub struct Estimator<'a> {
    pub stats: &'a dyn StatsProvider,
}

impl<'a> Estimator<'a> {
    pub fn new(stats: &'a dyn StatsProvider) -> Estimator<'a> {
        Estimator { stats }
    }

    /// Estimated output rows of a plan.
    pub fn rows(&self, plan: &LogicalPlan) -> f64 {
        match plan {
            LogicalPlan::Scan { relation, .. } => self
                .stats
                .table_rows(relation)
                .unwrap_or(DEFAULT_TABLE_ROWS)
                .max(1.0),
            // Placeholders stand in for another task's output: the
            // cross-database optimizer registers its estimate for them
            // under the placeholder name.
            LogicalPlan::Placeholder { name, .. } => self
                .stats
                .table_rows(name)
                .unwrap_or(DEFAULT_TABLE_ROWS)
                .max(1.0),
            LogicalPlan::OneRow => 1.0,
            LogicalPlan::Filter { input, predicate } => {
                let base = self.rows(input);
                (base * self.selectivity(predicate, input)).max(1.0)
            }
            LogicalPlan::Project { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::SubqueryAlias { input, .. } => self.rows(input),
            LogicalPlan::Limit { input, fetch } => self.rows(input).min(*fetch as f64),
            LogicalPlan::Join {
                left,
                right,
                on,
                residual,
            } => {
                let l = self.rows(left);
                let r = self.rows(right);
                let mut card = l * r;
                for (le, re) in on {
                    let ld = self
                        .expr_distinct(le, left)
                        .unwrap_or(l * DEFAULT_EQ_SELECTIVITY);
                    let rd = self
                        .expr_distinct(re, right)
                        .unwrap_or(r * DEFAULT_EQ_SELECTIVITY);
                    card /= ld.max(rd).max(1.0);
                }
                if let Some(res) = residual {
                    // Rough: treat residual like a filter over the join.
                    card *= self.selectivity_over(res, &left.schema().join(&right.schema()), None);
                }
                card.max(1.0)
            }
            LogicalPlan::Aggregate {
                input, group_by, ..
            } => {
                let in_rows = self.rows(input);
                if group_by.is_empty() {
                    return 1.0;
                }
                let mut groups = 1.0f64;
                for (e, _) in group_by {
                    groups *= self
                        .expr_distinct(e, input)
                        .unwrap_or(in_rows.sqrt().max(1.0));
                }
                groups.min(in_rows).max(1.0)
            }
            LogicalPlan::Distinct { input } => {
                let in_rows = self.rows(input);
                (in_rows * 0.5).max(1.0)
            }
            // Semi/anti joins keep a fraction of the left side.
            LogicalPlan::SemiJoin { left, .. } => (self.rows(left) * 0.5).max(1.0),
        }
    }

    /// Estimated average wire bytes per output row of a plan, derived from
    /// its schema (used for data-movement costing).
    pub fn row_bytes(&self, plan: &LogicalPlan) -> f64 {
        let schema = plan.schema();
        schema
            .fields
            .iter()
            .map(|f| match f.data_type {
                crate::value::DataType::Int => 8.0,
                crate::value::DataType::Float => 8.0,
                crate::value::DataType::Date => 4.0,
                crate::value::DataType::Bool => 1.0,
                // Average string payload guess (TPC-H comments skew larger,
                // names smaller).
                crate::value::DataType::Str => 24.0,
            })
            .sum::<f64>()
            .max(1.0)
    }

    /// Estimated output bytes of a plan.
    pub fn bytes(&self, plan: &LogicalPlan) -> f64 {
        self.rows(plan) * self.row_bytes(plan)
    }

    /// Number of distinct values an expression takes over a plan's output.
    pub fn expr_distinct(&self, e: &Expr, input: &LogicalPlan) -> Option<f64> {
        if let Expr::Column { qualifier, name } = e {
            if let Some((relation, column)) = resolve_base_column(input, qualifier.as_deref(), name)
            {
                if let Some(cs) = self.stats.column_stats(&relation, &column) {
                    return Some(cs.n_distinct.max(1.0));
                }
            }
        }
        None
    }

    /// Selectivity of a predicate against a plan.
    pub fn selectivity(&self, predicate: &Expr, input: &LogicalPlan) -> f64 {
        self.selectivity_over(predicate, &input.schema(), Some(input))
    }

    fn selectivity_over(
        &self,
        predicate: &Expr,
        _schema: &PlanSchema,
        input: Option<&LogicalPlan>,
    ) -> f64 {
        match predicate {
            Expr::Binary {
                op: BinaryOp::And,
                left,
                right,
            } => {
                self.selectivity_over(left, _schema, input)
                    * self.selectivity_over(right, _schema, input)
            }
            Expr::Binary {
                op: BinaryOp::Or,
                left,
                right,
            } => {
                let l = self.selectivity_over(left, _schema, input);
                let r = self.selectivity_over(right, _schema, input);
                (l + r - l * r).min(1.0)
            }
            Expr::Binary { op, left, right } if op.is_comparison() => {
                // Column-vs-literal comparisons get statistics treatment.
                let (col, lit, op) = match (&**left, &**right) {
                    (Expr::Column { .. }, Expr::Literal(v)) => (left, v, *op),
                    (Expr::Literal(v), Expr::Column { .. }) => (right, v, op.mirror()),
                    _ => {
                        return match op {
                            BinaryOp::Eq => DEFAULT_EQ_SELECTIVITY,
                            BinaryOp::NotEq => 1.0 - DEFAULT_EQ_SELECTIVITY,
                            _ => DEFAULT_RANGE_SELECTIVITY,
                        }
                    }
                };
                match op {
                    BinaryOp::Eq => {
                        if let Some(d) = input.and_then(|p| self.expr_distinct(col, p)) {
                            (1.0 / d).min(1.0)
                        } else {
                            DEFAULT_EQ_SELECTIVITY
                        }
                    }
                    BinaryOp::NotEq => 1.0 - DEFAULT_EQ_SELECTIVITY,
                    BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => {
                        self.range_fraction(col, lit, op, input)
                    }
                    _ => DEFAULT_RANGE_SELECTIVITY,
                }
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let frac = match (&**low, &**high) {
                    (Expr::Literal(lo), Expr::Literal(hi)) => {
                        let a = self.range_fraction(expr, hi, BinaryOp::LtEq, input);
                        let b = self.range_fraction(expr, lo, BinaryOp::Lt, input);
                        (a - b).clamp(0.01, 1.0)
                    }
                    _ => DEFAULT_RANGE_SELECTIVITY,
                };
                if *negated {
                    1.0 - frac
                } else {
                    frac
                }
            }
            Expr::Like {
                pattern, negated, ..
            } => {
                let base = if pattern.starts_with('%') {
                    DEFAULT_LIKE_SELECTIVITY
                } else {
                    DEFAULT_LIKE_SELECTIVITY * 2.0
                };
                if *negated {
                    1.0 - base
                } else {
                    base
                }
            }
            Expr::InList { list, negated, .. } => {
                let base = (DEFAULT_EQ_SELECTIVITY * list.len() as f64).min(1.0);
                if *negated {
                    1.0 - base
                } else {
                    base
                }
            }
            Expr::IsNull { negated, .. } => {
                if *negated {
                    0.95
                } else {
                    0.05
                }
            }
            Expr::Unary {
                op: crate::ast::UnaryOp::Not,
                expr,
            } => 1.0 - self.selectivity_over(expr, _schema, input),
            Expr::Literal(Value::Bool(true)) => 1.0,
            Expr::Literal(Value::Bool(false)) => 0.0,
            _ => DEFAULT_RANGE_SELECTIVITY,
        }
    }

    /// Fraction of rows with `col <op> lit`, using min/max statistics when
    /// available (uniformity assumption).
    fn range_fraction(
        &self,
        col: &Expr,
        lit: &Value,
        op: BinaryOp,
        input: Option<&LogicalPlan>,
    ) -> f64 {
        let stats = input.and_then(|p| {
            if let Expr::Column { qualifier, name } = col {
                resolve_base_column(p, qualifier.as_deref(), name)
                    .and_then(|(rel, c)| self.stats.column_stats(&rel, &c))
            } else {
                None
            }
        });
        let Some(stats) = stats else {
            return DEFAULT_RANGE_SELECTIVITY;
        };
        let (Some(min), Some(max)) = (stats.min.as_ref(), stats.max.as_ref()) else {
            return DEFAULT_RANGE_SELECTIVITY;
        };
        let to_f = |v: &Value| -> Option<f64> {
            match v {
                Value::Int(i) => Some(*i as f64),
                Value::Float(f) => Some(*f),
                Value::Date(d) => Some(*d as f64),
                _ => None,
            }
        };
        let (Some(lo), Some(hi), Some(x)) = (to_f(min), to_f(max), to_f(lit)) else {
            return DEFAULT_RANGE_SELECTIVITY;
        };
        if hi <= lo {
            return DEFAULT_RANGE_SELECTIVITY;
        }
        let below = ((x - lo) / (hi - lo)).clamp(0.0, 1.0);
        match op {
            BinaryOp::Lt | BinaryOp::LtEq => below.clamp(0.001, 1.0),
            BinaryOp::Gt | BinaryOp::GtEq => (1.0 - below).clamp(0.001, 1.0),
            _ => DEFAULT_RANGE_SELECTIVITY,
        }
    }
}

/// Trace a column reference through pass-through operators down to the base
/// relation it scans, for statistics lookup. Returns `(relation, column)`.
pub fn resolve_base_column(
    plan: &LogicalPlan,
    qualifier: Option<&str>,
    name: &str,
) -> Option<(String, String)> {
    match plan {
        LogicalPlan::Scan {
            relation,
            alias,
            fields,
        } => {
            if let Some(q) = qualifier {
                if !q.eq_ignore_ascii_case(alias) {
                    return None;
                }
            }
            fields
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case(name))
                .map(|(n, _)| (relation.clone(), n.clone()))
        }
        LogicalPlan::Placeholder { .. } | LogicalPlan::OneRow => None,
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Distinct { input } => resolve_base_column(input, qualifier, name),
        LogicalPlan::SubqueryAlias { input, alias } => {
            if let Some(q) = qualifier {
                if !q.eq_ignore_ascii_case(alias) {
                    return None;
                }
            }
            resolve_base_column(input, None, name)
        }
        LogicalPlan::Project { input, exprs } => {
            let (e, _) = exprs.iter().find(|(_, n)| n.eq_ignore_ascii_case(name))?;
            if let Expr::Column {
                qualifier: q,
                name: n,
            } = e
            {
                resolve_base_column(input, q.as_deref(), n)
            } else {
                None
            }
        }
        LogicalPlan::Join { left, right, .. } => resolve_base_column(left, qualifier, name)
            .or_else(|| resolve_base_column(right, qualifier, name)),
        // Semi-join output is the left side only.
        LogicalPlan::SemiJoin { left, .. } => resolve_base_column(left, qualifier, name),
        LogicalPlan::Aggregate {
            input, group_by, ..
        } => {
            let (e, _) = group_by
                .iter()
                .find(|(_, n)| n.eq_ignore_ascii_case(name))?;
            if let Expr::Column {
                qualifier: q,
                name: n,
            } = e
            {
                resolve_base_column(input, q.as_deref(), n)
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;
    use std::collections::HashMap;

    struct MapStats {
        rows: HashMap<String, f64>,
        cols: HashMap<(String, String), ColumnStats>,
    }

    impl StatsProvider for MapStats {
        fn table_rows(&self, relation: &str) -> Option<f64> {
            self.rows.get(relation).copied()
        }

        fn column_stats(&self, relation: &str, column: &str) -> Option<ColumnStats> {
            self.cols
                .get(&(relation.to_string(), column.to_string()))
                .cloned()
        }
    }

    fn scan(rel: &str, alias: &str, cols: &[(&str, DataType)]) -> LogicalPlan {
        LogicalPlan::Scan {
            relation: rel.to_string(),
            alias: alias.to_string(),
            fields: cols.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
        }
    }

    fn stats() -> MapStats {
        let mut rows = HashMap::new();
        rows.insert("orders".to_string(), 15000.0);
        rows.insert("customer".to_string(), 1500.0);
        let mut cols = HashMap::new();
        cols.insert(
            ("orders".to_string(), "o_custkey".to_string()),
            ColumnStats {
                n_distinct: 1000.0,
                min: Some(Value::Int(1)),
                max: Some(Value::Int(1500)),
            },
        );
        cols.insert(
            ("customer".to_string(), "c_custkey".to_string()),
            ColumnStats {
                n_distinct: 1500.0,
                min: Some(Value::Int(1)),
                max: Some(Value::Int(1500)),
            },
        );
        cols.insert(
            ("orders".to_string(), "o_orderdate".to_string()),
            ColumnStats {
                n_distinct: 2400.0,
                min: Some(Value::Date(8035)),  // ~1992-01-01
                max: Some(Value::Date(10592)), // ~1998-12-31
            },
        );
        MapStats { rows, cols }
    }

    #[test]
    fn scan_uses_table_rows() {
        let s = stats();
        let est = Estimator::new(&s);
        assert_eq!(est.rows(&scan("orders", "o", &[])), 15000.0);
        assert_eq!(est.rows(&scan("unknown", "u", &[])), DEFAULT_TABLE_ROWS);
    }

    #[test]
    fn equality_uses_distinct() {
        let s = stats();
        let est = Estimator::new(&s);
        let plan = scan("orders", "o", &[("o_custkey", DataType::Int)]).filter(Expr::eq(
            Expr::qcol("o", "o_custkey"),
            Expr::lit(Value::Int(5)),
        ));
        let rows = est.rows(&plan);
        assert!((rows - 15.0).abs() < 1.0, "{rows}"); // 15000/1000
    }

    #[test]
    fn range_uses_min_max() {
        let s = stats();
        let est = Estimator::new(&s);
        // Mid-range cut: should be near half.
        let mid = Value::Date((8035 + 10592) / 2);
        let plan = scan("orders", "o", &[("o_orderdate", DataType::Date)]).filter(Expr::binary(
            BinaryOp::Lt,
            Expr::qcol("o", "o_orderdate"),
            Expr::lit(mid),
        ));
        let frac = est.rows(&plan) / 15000.0;
        assert!((frac - 0.5).abs() < 0.05, "{frac}");
    }

    #[test]
    fn join_cardinality_pk_fk() {
        let s = stats();
        let est = Estimator::new(&s);
        let o = scan("orders", "o", &[("o_custkey", DataType::Int)]);
        let c = scan("customer", "c", &[("c_custkey", DataType::Int)]);
        let j = o.join(
            c,
            vec![(Expr::qcol("o", "o_custkey"), Expr::qcol("c", "c_custkey"))],
        );
        // 15000 * 1500 / max(1000, 1500) = 15000.
        let rows = est.rows(&j);
        assert!((rows - 15000.0).abs() < 1.0, "{rows}");
    }

    #[test]
    fn aggregate_group_count() {
        let s = stats();
        let est = Estimator::new(&s);
        let plan = LogicalPlan::Aggregate {
            input: Box::new(scan("orders", "o", &[("o_custkey", DataType::Int)])),
            group_by: vec![(Expr::qcol("o", "o_custkey"), "k".to_string())],
            aggregates: vec![],
        };
        assert_eq!(est.rows(&plan), 1000.0);
        // No grouping → one row.
        let total = LogicalPlan::Aggregate {
            input: Box::new(scan("orders", "o", &[])),
            group_by: vec![],
            aggregates: vec![],
        };
        assert_eq!(est.rows(&total), 1.0);
    }

    #[test]
    fn limit_caps() {
        let s = stats();
        let est = Estimator::new(&s);
        let plan = LogicalPlan::Limit {
            input: Box::new(scan("orders", "o", &[])),
            fetch: 10,
        };
        assert_eq!(est.rows(&plan), 10.0);
    }

    #[test]
    fn and_or_compose() {
        let est = Estimator::new(&NoStats);
        let p = scan("t", "t", &[("a", DataType::Int)]);
        let and = Expr::and(
            Expr::eq(Expr::qcol("t", "a"), Expr::lit(Value::Int(1))),
            Expr::eq(Expr::qcol("t", "a"), Expr::lit(Value::Int(2))),
        );
        let sel_and = est.selectivity(&and, &p);
        assert!((sel_and - 0.01).abs() < 1e-9);
        let or = Expr::binary(
            BinaryOp::Or,
            Expr::eq(Expr::qcol("t", "a"), Expr::lit(Value::Int(1))),
            Expr::eq(Expr::qcol("t", "a"), Expr::lit(Value::Int(2))),
        );
        let sel_or = est.selectivity(&or, &p);
        assert!(sel_or > sel_and && sel_or < 0.2, "{sel_or}");
    }

    #[test]
    fn resolve_through_alias_and_project() {
        let inner = scan("orders", "o", &[("o_custkey", DataType::Int)])
            .project(vec![(Expr::qcol("o", "o_custkey"), "k".to_string())]);
        let aliased = LogicalPlan::SubqueryAlias {
            input: Box::new(inner),
            alias: "sub".to_string(),
        };
        assert_eq!(
            resolve_base_column(&aliased, Some("sub"), "k"),
            Some(("orders".to_string(), "o_custkey".to_string()))
        );
        assert_eq!(resolve_base_column(&aliased, Some("other"), "k"), None);
    }
}
