//! A cheap, deterministic hasher for internal hash tables.
//!
//! `std`'s default SipHash is DoS-resistant but dominates profiles of
//! hash-heavy kernels (dictionary encoding, distinct-count statistics,
//! group-by probes). Everything in this workspace hashes *trusted* data the
//! process generated itself, and nothing observable depends on iteration
//! order or bucket layout — distinct counts, dictionary ids (assigned in
//! first-appearance order), and group outputs are all order-normalized
//! downstream — so a non-keyed FNV-1a is both safe and bit-compatible.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a, specialized with a single-multiply mix for fixed-width integer
/// keys (the common case for packed group keys and numeric distincts).
#[derive(Default)]
pub struct Fnv(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

impl Hasher for Fnv {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { FNV_OFFSET } else { self.0 };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        // One xor-multiply round mixes the whole word at once; byte-wise
        // FNV over 8 bytes costs 8 multiplies for no extra quality here.
        let h = if self.0 == 0 { FNV_OFFSET } else { self.0 };
        self.0 = (h ^ v).wrapping_mul(FNV_PRIME) ^ (v >> 32);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_i32(&mut self, v: i32) {
        self.write_u64(v as u32 as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Finalizer: the low bits of a bare FNV state correlate with the
        // last byte; hash tables index by the low bits.
        let h = self.0;
        let h = (h ^ (h >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^ (h >> 33)
    }
}

/// `HashMap` keyed by the FNV hasher.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<Fnv>>;
/// `HashSet` keyed by the FNV hasher.
pub type FastSet<T> = HashSet<T, BuildHasherDefault<Fnv>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_semantics_match_std() {
        // Same membership behaviour as the std hasher — only speed differs.
        let vals = [0i64, 1, -1, i64::MAX, i64::MIN, 42, 42, 7];
        let fast: FastSet<i64> = vals.iter().copied().collect();
        let std: HashSet<i64> = vals.iter().copied().collect();
        assert_eq!(fast.len(), std.len());
        for v in vals {
            assert!(fast.contains(&v));
        }
    }

    #[test]
    fn string_keys_roundtrip() {
        let mut m: FastMap<&str, u64> = FastMap::default();
        for (i, s) in ["a", "b", "a", "", "ab", "ba"].iter().enumerate() {
            m.entry(s).or_insert(i as u64);
        }
        assert_eq!(m.len(), 5);
        assert_eq!(m["a"], 0);
        assert_eq!(m[""], 3);
    }

    #[test]
    fn hasher_is_deterministic() {
        let h = |bytes: &[u8]| {
            let mut f = Fnv::default();
            f.write(bytes);
            f.finish()
        };
        assert_eq!(h(b"hello"), h(b"hello"));
        assert_ne!(h(b"hello"), h(b"hellp"));
        assert_ne!(h(b""), h(b"\0"));
    }
}
