//! Columnar storage primitives: typed column vectors with null bitmaps,
//! a builder that infers the physical layout from the values it sees, and a
//! pre-lowered name → position map (`SchemaIndex`) so column resolution pays
//! for case-insensitivity exactly once.
//!
//! The executor stores every materialized relation as a `Vec<Column>`. A
//! column preserves the *exact* `Value` variants it was built from —
//! `Int(7)` and `Float(7.0)` compare and hash equal but display differently,
//! so a column that mixes variants (possible for expression outputs) falls
//! back to the `Mixed` layout instead of coercing.

use crate::value::{DataType, Value};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

// ------------------------------------------------------------------ Bitmap

/// A packed bitmap; bit `i` set means row `i` is NULL.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
    ones: usize,
}

impl Bitmap {
    pub fn new() -> Bitmap {
        Bitmap::default()
    }

    pub fn with_capacity(cap: usize) -> Bitmap {
        Bitmap {
            words: Vec::with_capacity(cap.div_ceil(64)),
            len: 0,
            ones: 0,
        }
    }

    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
            self.ones += 1;
        }
        self.len += 1;
    }

    /// Append `n` set bits.
    pub fn push_ones(&mut self, n: usize) {
        for _ in 0..n {
            self.push(true);
        }
    }

    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set (NULL) bits.
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// True if no bit is set — lets kernels skip per-row null checks.
    pub fn none_set(&self) -> bool {
        self.ones == 0
    }
}

// ---------------------------------------------------------------- TypedCol

/// A typed vector plus its null bitmap. `data[i]` holds a placeholder
/// (default value) wherever `nulls.get(i)` is set.
#[derive(Debug, Clone, PartialEq)]
pub struct TypedCol<T> {
    pub data: Vec<T>,
    pub nulls: Bitmap,
}

impl<T: Clone + Default> TypedCol<T> {
    pub fn with_capacity(cap: usize) -> TypedCol<T> {
        TypedCol {
            data: Vec::with_capacity(cap),
            nulls: Bitmap::with_capacity(cap),
        }
    }

    pub fn push(&mut self, v: T) {
        self.data.push(v);
        self.nulls.push(false);
    }

    pub fn push_null(&mut self) {
        self.data.push(T::default());
        self.nulls.push(true);
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.nulls.get(i)
    }

    /// `Some(&data[i])` unless row `i` is NULL.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&T> {
        if self.nulls.get(i) {
            None
        } else {
            Some(&self.data[i])
        }
    }

    fn gather(&self, sel: &[u32]) -> TypedCol<T> {
        let mut out = TypedCol::with_capacity(sel.len());
        if self.nulls.none_set() {
            for &i in sel {
                out.push(self.data[i as usize].clone());
            }
        } else {
            for &i in sel {
                if self.nulls.get(i as usize) {
                    out.push_null();
                } else {
                    out.push(self.data[i as usize].clone());
                }
            }
        }
        out
    }

    fn head(&self, n: usize) -> TypedCol<T> {
        let mut out = TypedCol::with_capacity(n);
        for i in 0..n.min(self.len()) {
            if self.nulls.get(i) {
                out.push_null();
            } else {
                out.push(self.data[i].clone());
            }
        }
        out
    }

    /// Append rows `start..start + len` of `other`, preserving nulls and
    /// placeholder values exactly.
    fn append_range(&mut self, other: &TypedCol<T>, start: usize, len: usize) {
        for i in start..start + len {
            if other.nulls.get(i) {
                self.push_null();
            } else {
                self.data.push(other.data[i].clone());
                self.nulls.push(false);
            }
        }
    }

    /// Append the rows of `other` selected by `sel`, in `sel` order,
    /// preserving nulls exactly.
    fn append_gather(&mut self, other: &TypedCol<T>, sel: &[u32]) {
        if other.nulls.none_set() {
            for &i in sel {
                self.data.push(other.data[i as usize].clone());
                self.nulls.push(false);
            }
        } else {
            for &i in sel {
                if other.nulls.get(i as usize) {
                    self.push_null();
                } else {
                    self.data.push(other.data[i as usize].clone());
                    self.nulls.push(false);
                }
            }
        }
    }
}

// ------------------------------------------------------------------ Column

/// A materialized column. Typed layouts are `Arc`-shared so projection and
/// scan reuse are pointer copies; `Mixed` preserves arbitrary `Value`
/// sequences (mixed Int/Float expression outputs, all-NULL columns).
#[derive(Debug, Clone)]
pub enum Column {
    Int(Arc<TypedCol<i64>>),
    Float(Arc<TypedCol<f64>>),
    Str(Arc<TypedCol<Arc<str>>>),
    Date(Arc<TypedCol<i32>>),
    Bool(Arc<TypedCol<bool>>),
    Mixed(Arc<Vec<Value>>),
}

impl Column {
    pub fn from_values<I: IntoIterator<Item = Value>>(values: I) -> Column {
        let it = values.into_iter();
        let mut b = ColumnBuilder::with_capacity(it.size_hint().0);
        for v in it {
            b.push(v);
        }
        b.finish()
    }

    pub fn empty_of(ty: DataType) -> Column {
        match ty {
            DataType::Int => Column::Int(Arc::new(TypedCol::with_capacity(0))),
            DataType::Float => Column::Float(Arc::new(TypedCol::with_capacity(0))),
            DataType::Str => Column::Str(Arc::new(TypedCol::with_capacity(0))),
            DataType::Date => Column::Date(Arc::new(TypedCol::with_capacity(0))),
            DataType::Bool => Column::Bool(Arc::new(TypedCol::with_capacity(0))),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            Column::Int(c) => c.len(),
            Column::Float(c) => c.len(),
            Column::Str(c) => c.len(),
            Column::Date(c) => c.len(),
            Column::Bool(c) => c.len(),
            Column::Mixed(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            Column::Int(c) => c.is_null(i),
            Column::Float(c) => c.is_null(i),
            Column::Str(c) => c.is_null(i),
            Column::Date(c) => c.is_null(i),
            Column::Bool(c) => c.is_null(i),
            Column::Mixed(v) => v[i].is_null(),
        }
    }

    /// Reconstruct the `Value` at row `i` — exact variant preservation.
    #[inline]
    pub fn value(&self, i: usize) -> Value {
        match self {
            Column::Int(c) => c.get(i).map_or(Value::Null, |v| Value::Int(*v)),
            Column::Float(c) => c.get(i).map_or(Value::Null, |v| Value::Float(*v)),
            Column::Str(c) => c.get(i).map_or(Value::Null, |v| Value::Str(v.clone())),
            Column::Date(c) => c.get(i).map_or(Value::Null, |v| Value::Date(*v)),
            Column::Bool(c) => c.get(i).map_or(Value::Null, |v| Value::Bool(*v)),
            Column::Mixed(v) => v[i].clone(),
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(|i| self.value(i))
    }

    /// New column holding the rows selected by `sel`, in `sel` order.
    pub fn gather(&self, sel: &[u32]) -> Column {
        match self {
            Column::Int(c) => Column::Int(Arc::new(c.gather(sel))),
            Column::Float(c) => Column::Float(Arc::new(c.gather(sel))),
            Column::Str(c) => Column::Str(Arc::new(c.gather(sel))),
            Column::Date(c) => Column::Date(Arc::new(c.gather(sel))),
            Column::Bool(c) => Column::Bool(Arc::new(c.gather(sel))),
            Column::Mixed(v) => Column::Mixed(Arc::new(
                sel.iter().map(|&i| v[i as usize].clone()).collect(),
            )),
        }
    }

    /// First `n` rows; a cheap `Arc` clone when `n >= len`.
    pub fn head(&self, n: usize) -> Column {
        if n >= self.len() {
            return self.clone();
        }
        match self {
            Column::Int(c) => Column::Int(Arc::new(c.head(n))),
            Column::Float(c) => Column::Float(Arc::new(c.head(n))),
            Column::Str(c) => Column::Str(Arc::new(c.head(n))),
            Column::Date(c) => Column::Date(Arc::new(c.head(n))),
            Column::Bool(c) => Column::Bool(Arc::new(c.head(n))),
            Column::Mixed(v) => Column::Mixed(Arc::new(v[..n].to_vec())),
        }
    }

    /// An empty column of the same variant as `self` (all-NULL and
    /// `Mixed` layouts included), ready for [`Column::append_range`].
    pub fn empty_like(&self) -> Column {
        match self {
            Column::Int(_) => Column::Int(Arc::new(TypedCol::with_capacity(0))),
            Column::Float(_) => Column::Float(Arc::new(TypedCol::with_capacity(0))),
            Column::Str(_) => Column::Str(Arc::new(TypedCol::with_capacity(0))),
            Column::Date(_) => Column::Date(Arc::new(TypedCol::with_capacity(0))),
            Column::Bool(_) => Column::Bool(Arc::new(TypedCol::with_capacity(0))),
            Column::Mixed(_) => Column::Mixed(Arc::new(Vec::new())),
        }
    }

    /// Append rows `start..start + len` of `other` (same variant) onto
    /// this column, preserving the layout exactly — the morsel-wise
    /// ingestion primitive for streamed edges. Panics on variant mismatch.
    pub fn append_range(&mut self, other: &Column, start: usize, len: usize) {
        match (self, other) {
            (Column::Int(a), Column::Int(b)) => Arc::make_mut(a).append_range(b, start, len),
            (Column::Float(a), Column::Float(b)) => Arc::make_mut(a).append_range(b, start, len),
            (Column::Str(a), Column::Str(b)) => Arc::make_mut(a).append_range(b, start, len),
            (Column::Date(a), Column::Date(b)) => Arc::make_mut(a).append_range(b, start, len),
            (Column::Bool(a), Column::Bool(b)) => Arc::make_mut(a).append_range(b, start, len),
            (Column::Mixed(a), Column::Mixed(b)) => {
                Arc::make_mut(a).extend_from_slice(&b[start..start + len]);
            }
            _ => panic!("append_range: column variant mismatch"),
        }
    }

    /// Append the rows of `other` (same variant) selected by `sel`, in
    /// `sel` order — the fused filter half of morsel-wise ingestion
    /// (gather and concatenate in one pass, no intermediate column).
    /// Panics on variant mismatch.
    pub fn append_gather(&mut self, other: &Column, sel: &[u32]) {
        match (self, other) {
            (Column::Int(a), Column::Int(b)) => Arc::make_mut(a).append_gather(b, sel),
            (Column::Float(a), Column::Float(b)) => Arc::make_mut(a).append_gather(b, sel),
            (Column::Str(a), Column::Str(b)) => Arc::make_mut(a).append_gather(b, sel),
            (Column::Date(a), Column::Date(b)) => Arc::make_mut(a).append_gather(b, sel),
            (Column::Bool(a), Column::Bool(b)) => Arc::make_mut(a).append_gather(b, sel),
            (Column::Mixed(a), Column::Mixed(b)) => {
                Arc::make_mut(a).extend(sel.iter().map(|&i| b[i as usize].clone()));
            }
            _ => panic!("append_gather: column variant mismatch"),
        }
    }

    /// Simulated wire size: per-value payload bytes, no framing (the
    /// relation adds 4 bytes per row). Totals match the row-major model.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            // NULL costs 1 byte; present values cost their payload size.
            Column::Int(c) => typed_wire(c, 8),
            Column::Float(c) => typed_wire(c, 8),
            Column::Date(c) => typed_wire(c, 4),
            Column::Bool(c) => typed_wire(c, 1),
            Column::Str(c) => {
                let nulls = c.nulls.count_ones() as u64;
                let mut total = nulls;
                if c.nulls.none_set() {
                    for s in &c.data {
                        total += 4 + s.len() as u64;
                    }
                } else {
                    for i in 0..c.len() {
                        if !c.is_null(i) {
                            total += 4 + c.data[i].len() as u64;
                        }
                    }
                }
                total
            }
            Column::Mixed(v) => v.iter().map(Value::wire_size).sum(),
        }
    }

    /// Total order between rows `i` and `j` of this column, matching
    /// `Value::total_cmp` (NULLs last, incomparables by type tag).
    #[inline]
    pub fn cmp_rows(&self, i: usize, j: usize) -> Ordering {
        match self {
            Column::Int(c) => match (c.get(i), c.get(j)) {
                (Some(a), Some(b)) => a.cmp(b),
                (a, b) => null_cmp(a.is_none(), b.is_none()),
            },
            Column::Float(c) => match (c.get(i), c.get(j)) {
                // NaN falls through sql_cmp to the type-tag tiebreak, which
                // is Equal for same-variant values — mirror that here.
                (Some(a), Some(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
                (a, b) => null_cmp(a.is_none(), b.is_none()),
            },
            Column::Str(c) => match (c.get(i), c.get(j)) {
                (Some(a), Some(b)) => a.as_ref().cmp(b.as_ref()),
                (a, b) => null_cmp(a.is_none(), b.is_none()),
            },
            Column::Date(c) => match (c.get(i), c.get(j)) {
                (Some(a), Some(b)) => a.cmp(b),
                (a, b) => null_cmp(a.is_none(), b.is_none()),
            },
            Column::Bool(c) => match (c.get(i), c.get(j)) {
                (Some(a), Some(b)) => a.cmp(b),
                (a, b) => null_cmp(a.is_none(), b.is_none()),
            },
            Column::Mixed(v) => v[i].total_cmp(&v[j]),
        }
    }

    pub fn as_int(&self) -> Option<&TypedCol<i64>> {
        match self {
            Column::Int(c) => Some(c),
            _ => None,
        }
    }

    pub fn as_float(&self) -> Option<&TypedCol<f64>> {
        match self {
            Column::Float(c) => Some(c),
            _ => None,
        }
    }

    pub fn as_str_col(&self) -> Option<&TypedCol<Arc<str>>> {
        match self {
            Column::Str(c) => Some(c),
            _ => None,
        }
    }

    pub fn as_date(&self) -> Option<&TypedCol<i32>> {
        match self {
            Column::Date(c) => Some(c),
            _ => None,
        }
    }

    pub fn as_bool_col(&self) -> Option<&TypedCol<bool>> {
        match self {
            Column::Bool(c) => Some(c),
            _ => None,
        }
    }

    pub fn is_mixed(&self) -> bool {
        matches!(self, Column::Mixed(_))
    }
}

#[inline]
fn typed_wire<T>(c: &TypedCol<T>, per_value: u64) -> u64 {
    let nulls = c.nulls.count_ones() as u64;
    nulls + (c.data.len() as u64 - nulls) * per_value
}

#[inline]
fn null_cmp(a_null: bool, b_null: bool) -> Ordering {
    // total_cmp semantics: NULLs sort last; NULL == NULL.
    match (a_null, b_null) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => unreachable!("both values present"),
    }
}

impl PartialEq for Column {
    /// Element-wise `Value` equality (cross-type Int/Float equality and
    /// bitwise float equality, exactly like row-major comparison did).
    fn eq(&self, other: &Column) -> bool {
        self.len() == other.len() && (0..self.len()).all(|i| self.value(i) == other.value(i))
    }
}

// ----------------------------------------------------------- ColumnBuilder

enum BuildState {
    /// Only NULLs seen so far; the first non-null value fixes the layout.
    Untyped {
        nulls: usize,
    },
    Int(TypedCol<i64>),
    Float(TypedCol<f64>),
    Str(TypedCol<Arc<str>>),
    Date(TypedCol<i32>),
    Bool(TypedCol<bool>),
    Mixed(Vec<Value>),
}

/// Builds a `Column` one value at a time, inferring the layout: the first
/// non-null value picks a typed vector; any later variant mismatch degrades
/// the whole column to `Mixed` (value sequence preserved exactly).
pub struct ColumnBuilder {
    state: BuildState,
    cap: usize,
}

impl Default for ColumnBuilder {
    fn default() -> Self {
        ColumnBuilder::new()
    }
}

impl ColumnBuilder {
    pub fn new() -> ColumnBuilder {
        ColumnBuilder::with_capacity(0)
    }

    pub fn with_capacity(cap: usize) -> ColumnBuilder {
        ColumnBuilder {
            state: BuildState::Untyped { nulls: 0 },
            cap,
        }
    }

    /// Start a typed column of `ty` with `nulls` leading NULL slots.
    fn typed_with_leading_nulls<T: Clone + Default>(cap: usize, nulls: usize) -> TypedCol<T> {
        let mut c = TypedCol::with_capacity(cap.max(nulls));
        for _ in 0..nulls {
            c.push_null();
        }
        c
    }

    /// Degrade the current typed state to `Mixed`, preserving every value.
    fn degrade(&mut self) -> &mut Vec<Value> {
        let values: Vec<Value> = match &self.state {
            BuildState::Untyped { nulls } => vec![Value::Null; *nulls],
            BuildState::Int(c) => (0..c.len())
                .map(|i| c.get(i).map_or(Value::Null, |v| Value::Int(*v)))
                .collect(),
            BuildState::Float(c) => (0..c.len())
                .map(|i| c.get(i).map_or(Value::Null, |v| Value::Float(*v)))
                .collect(),
            BuildState::Str(c) => (0..c.len())
                .map(|i| c.get(i).map_or(Value::Null, |v| Value::Str(v.clone())))
                .collect(),
            BuildState::Date(c) => (0..c.len())
                .map(|i| c.get(i).map_or(Value::Null, |v| Value::Date(*v)))
                .collect(),
            BuildState::Bool(c) => (0..c.len())
                .map(|i| c.get(i).map_or(Value::Null, |v| Value::Bool(*v)))
                .collect(),
            BuildState::Mixed(_) => unreachable!("already mixed"),
        };
        self.state = BuildState::Mixed(values);
        match &mut self.state {
            BuildState::Mixed(v) => v,
            _ => unreachable!(),
        }
    }

    pub fn push(&mut self, v: Value) {
        match (&mut self.state, v) {
            (BuildState::Untyped { nulls }, Value::Null) => *nulls += 1,
            (BuildState::Untyped { nulls }, v) => {
                let n = *nulls;
                let cap = self.cap;
                self.state = match v {
                    Value::Int(x) => {
                        let mut c = Self::typed_with_leading_nulls(cap, n);
                        c.push(x);
                        BuildState::Int(c)
                    }
                    Value::Float(x) => {
                        let mut c = Self::typed_with_leading_nulls(cap, n);
                        c.push(x);
                        BuildState::Float(c)
                    }
                    Value::Str(x) => {
                        let mut c = Self::typed_with_leading_nulls(cap, n);
                        c.push(x);
                        BuildState::Str(c)
                    }
                    Value::Date(x) => {
                        let mut c = Self::typed_with_leading_nulls(cap, n);
                        c.push(x);
                        BuildState::Date(c)
                    }
                    Value::Bool(x) => {
                        let mut c = Self::typed_with_leading_nulls(cap, n);
                        c.push(x);
                        BuildState::Bool(c)
                    }
                    Value::Null => unreachable!("handled above"),
                };
            }
            (BuildState::Int(c), Value::Int(x)) => c.push(x),
            (BuildState::Int(c), Value::Null) => c.push_null(),
            (BuildState::Float(c), Value::Float(x)) => c.push(x),
            (BuildState::Float(c), Value::Null) => c.push_null(),
            (BuildState::Str(c), Value::Str(x)) => c.push(x),
            (BuildState::Str(c), Value::Null) => c.push_null(),
            (BuildState::Date(c), Value::Date(x)) => c.push(x),
            (BuildState::Date(c), Value::Null) => c.push_null(),
            (BuildState::Bool(c), Value::Bool(x)) => c.push(x),
            (BuildState::Bool(c), Value::Null) => c.push_null(),
            (BuildState::Mixed(vals), v) => vals.push(v),
            (_, v) => self.degrade().push(v),
        }
    }

    pub fn finish(self) -> Column {
        match self.state {
            // All-NULL (or empty) columns carry no type evidence.
            BuildState::Untyped { nulls } => Column::Mixed(Arc::new(vec![Value::Null; nulls])),
            BuildState::Int(c) => Column::Int(Arc::new(c)),
            BuildState::Float(c) => Column::Float(Arc::new(c)),
            BuildState::Str(c) => Column::Str(Arc::new(c)),
            BuildState::Date(c) => Column::Date(Arc::new(c)),
            BuildState::Bool(c) => Column::Bool(Arc::new(c)),
            BuildState::Mixed(v) => Column::Mixed(Arc::new(v)),
        }
    }
}

// ------------------------------------------------------------- SchemaIndex

/// Pre-lowered column-name → position map. Built once per relation schema;
/// every later lookup is a single hash probe (no per-call lowering when the
/// query name is already lowercase, which TPC-H names are).
#[derive(Debug, Clone, Default)]
pub struct SchemaIndex {
    map: HashMap<String, usize>,
}

impl SchemaIndex {
    /// First occurrence wins, matching positional `.position()` resolution.
    pub fn build<'a>(names: impl IntoIterator<Item = &'a str>) -> SchemaIndex {
        let mut map = HashMap::new();
        for (i, n) in names.into_iter().enumerate() {
            map.entry(n.to_ascii_lowercase()).or_insert(i);
        }
        SchemaIndex { map }
    }

    pub fn get(&self, name: &str) -> Option<usize> {
        if name.bytes().any(|b| b.is_ascii_uppercase()) {
            self.map.get(&name.to_ascii_lowercase()).copied()
        } else {
            self.map.get(name).copied()
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_stays_typed_and_roundtrips() {
        let vals = vec![Value::Null, Value::Int(3), Value::Null, Value::Int(-1)];
        let col = Column::from_values(vals.clone());
        assert!(col.as_int().is_some());
        assert_eq!(col.iter().collect::<Vec<_>>(), vals);
        assert_eq!(col.as_int().unwrap().nulls.count_ones(), 2);
    }

    #[test]
    fn builder_degrades_to_mixed_on_variant_mismatch() {
        let vals = vec![Value::Int(1), Value::Float(2.5), Value::Null];
        let col = Column::from_values(vals.clone());
        assert!(col.is_mixed());
        assert_eq!(col.iter().collect::<Vec<_>>(), vals);
    }

    #[test]
    fn all_null_column_is_mixed() {
        let col = Column::from_values(vec![Value::Null, Value::Null]);
        assert!(col.is_mixed());
        assert!(col.is_null(0) && col.is_null(1));
    }

    #[test]
    fn wire_bytes_match_row_major_model() {
        let vals = vec![Value::str("xy"), Value::Null, Value::str("")];
        let col = Column::from_values(vals.clone());
        let expect: u64 = vals.iter().map(Value::wire_size).sum();
        assert_eq!(col.wire_bytes(), expect); // 6 + 1 + 4
        let ints = Column::from_values(vec![Value::Int(1), Value::Null]);
        assert_eq!(ints.wire_bytes(), 9);
    }

    #[test]
    fn gather_and_head_preserve_values() {
        let col = Column::from_values(vec![
            Value::Date(10),
            Value::Null,
            Value::Date(-3),
            Value::Date(7),
        ]);
        let g = col.gather(&[2, 0, 1]);
        assert_eq!(
            g.iter().collect::<Vec<_>>(),
            vec![Value::Date(-3), Value::Date(10), Value::Null]
        );
        let h = col.head(2);
        assert_eq!(h.len(), 2);
        assert_eq!(h.value(1), Value::Null);
    }

    #[test]
    fn append_gather_matches_gather_then_append() {
        let src = Column::from_values(vec![
            Value::str("a"),
            Value::Null,
            Value::str("c"),
            Value::str("d"),
        ]);
        let sel = [3u32, 1, 0];
        let mut direct = src.empty_like();
        direct.append_gather(&src, &sel);
        let mut via_gather = src.empty_like();
        let g = src.gather(&sel);
        via_gather.append_range(&g, 0, g.len());
        assert_eq!(
            direct.iter().collect::<Vec<_>>(),
            via_gather.iter().collect::<Vec<_>>()
        );
        // Mixed layout goes through the Value path.
        let mixed = Column::Mixed(Arc::new(vec![Value::Int(1), Value::Float(2.0)]));
        let mut out = mixed.empty_like();
        out.append_gather(&mixed, &[1, 0]);
        assert_eq!(
            out.iter().collect::<Vec<_>>(),
            vec![Value::Float(2.0), Value::Int(1)]
        );
    }

    #[test]
    fn cmp_rows_matches_total_cmp() {
        let vals = vec![
            Value::Float(1.5),
            Value::Null,
            Value::Float(f64::NAN),
            Value::Float(-2.0),
        ];
        let col = Column::from_values(vals.clone());
        for i in 0..vals.len() {
            for j in 0..vals.len() {
                assert_eq!(
                    col.cmp_rows(i, j),
                    vals[i].total_cmp(&vals[j]),
                    "rows {i},{j}"
                );
            }
        }
    }

    #[test]
    fn schema_index_is_case_insensitive_first_wins() {
        let idx = SchemaIndex::build(["A", "b", "a"]);
        assert_eq!(idx.get("a"), Some(0));
        assert_eq!(idx.get("A"), Some(0));
        assert_eq!(idx.get("B"), Some(1));
        assert_eq!(idx.get("nope"), None);
    }
}
