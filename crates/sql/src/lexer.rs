//! Hand-written SQL lexer.
//!
//! Keywords are recognized case-insensitively at the parser level; the lexer
//! only distinguishes token *shapes* (identifier, number, string, symbol).

use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare identifier or keyword (original spelling preserved).
    Ident(String),
    /// `"quoted"` or `` `quoted` `` identifier.
    QuotedIdent(String),
    /// `'string literal'` with `''` escaping.
    StringLit(String),
    /// Integer literal.
    IntLit(i64),
    /// Floating-point literal.
    FloatLit(f64),
    // Symbols.
    Comma,
    LParen,
    RParen,
    Dot,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    /// `||` string concatenation.
    Concat,
    /// `?` positional placeholder (used in delegation-plan rendering).
    Question,
    Eof,
}

impl Token {
    /// The keyword spelling if this token is a bare identifier, uppercased.
    pub fn keyword(&self) -> Option<String> {
        match self {
            Token::Ident(s) => Some(s.to_ascii_uppercase()),
            _ => None,
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::QuotedIdent(s) => write!(f, "\"{s}\""),
            Token::StringLit(s) => write!(f, "'{s}'"),
            Token::IntLit(v) => write!(f, "{v}"),
            Token::FloatLit(v) => write!(f, "{v}"),
            Token::Comma => f.write_str(","),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Dot => f.write_str("."),
            Token::Semicolon => f.write_str(";"),
            Token::Star => f.write_str("*"),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Slash => f.write_str("/"),
            Token::Percent => f.write_str("%"),
            Token::Eq => f.write_str("="),
            Token::NotEq => f.write_str("<>"),
            Token::Lt => f.write_str("<"),
            Token::LtEq => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::GtEq => f.write_str(">="),
            Token::Concat => f.write_str("||"),
            Token::Question => f.write_str("?"),
            Token::Eof => f.write_str("<eof>"),
        }
    }
}

/// A token plus its byte offset in the source (for error messages).
#[derive(Debug, Clone)]
pub struct Spanned {
    pub token: Token,
    pub offset: usize,
}

/// Lexing error with byte offset into the input.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `input` into a vector of spanned tokens terminated by `Eof`.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::with_capacity(input.len() / 4 + 4);
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let start = i;
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                // Block comment.
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                if depth > 0 {
                    return Err(LexError {
                        message: "unterminated block comment".into(),
                        offset: start,
                    });
                }
            }
            b'\'' => {
                let (s, next) = lex_quoted(input, i, '\'')?;
                tokens.push(Spanned {
                    token: Token::StringLit(s),
                    offset: start,
                });
                i = next;
            }
            b'"' => {
                let (s, next) = lex_quoted(input, i, '"')?;
                tokens.push(Spanned {
                    token: Token::QuotedIdent(s),
                    offset: start,
                });
                i = next;
            }
            b'`' => {
                let (s, next) = lex_quoted(input, i, '`')?;
                tokens.push(Spanned {
                    token: Token::QuotedIdent(s),
                    offset: start,
                });
                i = next;
            }
            b'0'..=b'9' => {
                let (tok, next) = lex_number(input, i)?;
                tokens.push(Spanned {
                    token: tok,
                    offset: start,
                });
                i = next;
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j] == b'_' || bytes[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                tokens.push(Spanned {
                    token: Token::Ident(input[i..j].to_string()),
                    offset: start,
                });
                i = j;
            }
            _ => {
                let (tok, adv) = lex_symbol(bytes, i).ok_or_else(|| LexError {
                    message: format!("unexpected character {:?}", c as char),
                    offset: start,
                })?;
                tokens.push(Spanned {
                    token: tok,
                    offset: start,
                });
                i += adv;
            }
        }
    }
    tokens.push(Spanned {
        token: Token::Eof,
        offset: input.len(),
    });
    Ok(tokens)
}

/// Lex a quoted region starting at `start` (which holds the quote char).
/// Doubled quote chars escape themselves, SQL-style.
fn lex_quoted(input: &str, start: usize, quote: char) -> Result<(String, usize), LexError> {
    let mut out = String::new();
    let mut chars = input[start + 1..].char_indices();
    while let Some((off, c)) = chars.next() {
        if c == quote {
            // Peek for doubled quote.
            let abs = start + 1 + off + c.len_utf8();
            if input[abs..].starts_with(quote) {
                out.push(quote);
                chars.next();
            } else {
                return Ok((out, abs));
            }
        } else {
            out.push(c);
        }
    }
    Err(LexError {
        message: format!("unterminated {quote}-quoted token"),
        offset: start,
    })
}

fn lex_number(input: &str, start: usize) -> Result<(Token, usize), LexError> {
    let bytes = input.as_bytes();
    let mut i = start;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    let mut is_float = false;
    if i < bytes.len() && bytes[i] == b'.' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() {
        is_float = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            is_float = true;
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = &input[start..i];
    let tok = if is_float {
        Token::FloatLit(text.parse().map_err(|_| LexError {
            message: format!("invalid float literal {text:?}"),
            offset: start,
        })?)
    } else {
        match text.parse::<i64>() {
            Ok(v) => Token::IntLit(v),
            // Overflowing integers fall back to float, like most engines.
            Err(_) => Token::FloatLit(text.parse().map_err(|_| LexError {
                message: format!("invalid numeric literal {text:?}"),
                offset: start,
            })?),
        }
    };
    Ok((tok, i))
}

fn lex_symbol(bytes: &[u8], i: usize) -> Option<(Token, usize)> {
    let two = |a: u8, b: u8| i + 1 < bytes.len() && bytes[i] == a && bytes[i + 1] == b;
    if two(b'<', b'=') {
        return Some((Token::LtEq, 2));
    }
    if two(b'>', b'=') {
        return Some((Token::GtEq, 2));
    }
    if two(b'<', b'>') {
        return Some((Token::NotEq, 2));
    }
    if two(b'!', b'=') {
        return Some((Token::NotEq, 2));
    }
    if two(b'|', b'|') {
        return Some((Token::Concat, 2));
    }
    let tok = match bytes[i] {
        b',' => Token::Comma,
        b'(' => Token::LParen,
        b')' => Token::RParen,
        b'.' => Token::Dot,
        b';' => Token::Semicolon,
        b'*' => Token::Star,
        b'+' => Token::Plus,
        b'-' => Token::Minus,
        b'/' => Token::Slash,
        b'%' => Token::Percent,
        b'=' => Token::Eq,
        b'<' => Token::Lt,
        b'>' => Token::Gt,
        b'?' => Token::Question,
        _ => return None,
    };
    Some((tok, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn basic_select() {
        assert_eq!(
            toks("SELECT a, b FROM t WHERE a >= 10"),
            vec![
                Token::Ident("SELECT".into()),
                Token::Ident("a".into()),
                Token::Comma,
                Token::Ident("b".into()),
                Token::Ident("FROM".into()),
                Token::Ident("t".into()),
                Token::Ident("WHERE".into()),
                Token::Ident("a".into()),
                Token::GtEq,
                Token::IntLit(10),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            toks("'it''s' \"Weird Col\" `tick`"),
            vec![
                Token::StringLit("it's".into()),
                Token::QuotedIdent("Weird Col".into()),
                Token::QuotedIdent("tick".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("1 2.5 0.001 1e3 10.5e-2"),
            vec![
                Token::IntLit(1),
                Token::FloatLit(2.5),
                Token::FloatLit(0.001),
                Token::FloatLit(1000.0),
                Token::FloatLit(0.105),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn int_overflow_falls_back_to_float() {
        assert_eq!(
            toks("99999999999999999999"),
            vec![Token::FloatLit(1e20), Token::Eof]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a -- comment\n b /* block /* not nested */ c"),
            vec![
                Token::Ident("a".into()),
                Token::Ident("b".into()),
                Token::Ident("c".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("< <= > >= <> != = ||"),
            vec![
                Token::Lt,
                Token::LtEq,
                Token::Gt,
                Token::GtEq,
                Token::NotEq,
                Token::NotEq,
                Token::Eq,
                Token::Concat,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'abc").is_err());
        assert!(tokenize("/* open").is_err());
    }

    #[test]
    fn dotted_and_star() {
        assert_eq!(
            toks("t.a t.* ?"),
            vec![
                Token::Ident("t".into()),
                Token::Dot,
                Token::Ident("a".into()),
                Token::Ident("t".into()),
                Token::Dot,
                Token::Star,
                Token::Question,
                Token::Eof,
            ]
        );
    }
}
