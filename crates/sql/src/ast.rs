//! Abstract syntax tree for the SQL dialect understood by every system in
//! the federation (XDB itself, the embedded engines, and the baselines).
//!
//! The AST is designed to round-trip: `parse(render(ast)) == ast` for every
//! statement the parser accepts, which is what makes *delegation by query
//! rewriting* possible (Section V of the paper).

use crate::value::{DataType, Value};

/// A top-level SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(Box<SelectStmt>),
    /// `EXPLAIN <select>` — returns the engine's cost estimate, used by the
    /// XDB optimizer's "consulting" approach (Section IV-B2).
    Explain(Box<SelectStmt>),
    /// `CREATE TABLE name (col type, ...)`
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
        if_not_exists: bool,
    },
    /// `CREATE [OR REPLACE] VIEW name AS <select>` — the paper's
    /// *virtual relation* (DDL 1 / DDL 2-2 in Figure 7).
    CreateView {
        name: String,
        query: Box<SelectStmt>,
        or_replace: bool,
    },
    /// `CREATE FOREIGN TABLE name (col type, ...) SERVER srv [OPTIONS
    /// (remote 'rel')]` — the SQL/MED foreign table (DDL 2-1 in Figure 7).
    CreateForeignTable {
        name: String,
        columns: Vec<ColumnDef>,
        server: String,
        /// Name of the relation on the remote server this table points at.
        /// Defaults to `name` when omitted.
        remote_name: Option<String>,
    },
    /// `CREATE TABLE name AS <select>` — explicit materialization of an
    /// intermediate relation (Section V-A, "Enforcing Explicit Data
    /// Movements").
    CreateTableAs {
        name: String,
        query: Box<SelectStmt>,
    },
    /// `INSERT INTO name VALUES (...), (...)` — used by tests and loaders.
    Insert {
        table: String,
        rows: Vec<Vec<Expr>>,
    },
    /// `DROP TABLE|VIEW|FOREIGN TABLE [IF EXISTS] name` — delegation
    /// cleanup ("short-lived relations", Section III).
    Drop {
        kind: ObjectKind,
        name: String,
        if_exists: bool,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectKind {
    Table,
    View,
    ForeignTable,
}

#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: DataType,
}

/// A `SELECT` query block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    /// Comma-separated FROM items; each may itself be a join tree.
    pub from: Vec<TableRef>,
    pub selection: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderByExpr>,
    pub limit: Option<u64>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<String> },
}

#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Base table, view, or foreign table reference with optional alias.
    Table { name: String, alias: Option<String> },
    /// Derived table: `(SELECT ...) AS alias`.
    Derived {
        query: Box<SelectStmt>,
        alias: String,
    },
    /// `left [INNER] JOIN right ON cond` (analytical subset: inner only).
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        on: Box<Expr>,
    },
}

impl TableRef {
    /// The alias this item is known by in scope (base tables default to
    /// their own name). Joins have no alias.
    pub fn scope_alias(&self) -> Option<&str> {
        match self {
            TableRef::Table { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            TableRef::Derived { alias, .. } => Some(alias),
            TableRef::Join { .. } => None,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct OrderByExpr {
    pub expr: Expr,
    pub desc: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Plus,
    Minus,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Concat,
}

impl BinaryOp {
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }

    /// Mirror of a comparison when its operands are swapped (`a < b` ≡ `b > a`).
    pub fn mirror(self) -> BinaryOp {
        match self {
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::LtEq => BinaryOp::GtEq,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::GtEq => BinaryOp::LtEq,
            other => other,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    Neg,
    Not,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DateField {
    Year,
    Month,
    Day,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntervalUnit {
    Year,
    Month,
    Day,
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `[qualifier.]name`
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Literal(Value),
    /// `INTERVAL '<n>' <unit>`; only meaningful added to / subtracted from
    /// a date.
    Interval {
        n: i64,
        unit: IntervalUnit,
    },
    Binary {
        op: BinaryOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    /// Scalar or aggregate function call. Aggregates (`SUM`, `AVG`,
    /// `COUNT`, `MIN`, `MAX`) are recognized by name downstream.
    Function {
        name: String,
        args: Vec<Expr>,
        distinct: bool,
    },
    /// `COUNT(*)`
    CountStar,
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    Like {
        expr: Box<Expr>,
        pattern: String,
        negated: bool,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    /// `[NOT] EXISTS (subquery)` — only valid in WHERE/HAVING position;
    /// the binder turns it into a semi/anti join.
    Exists {
        query: Box<SelectStmt>,
        negated: bool,
    },
    /// `expr [NOT] IN (subquery)` — binder turns it into a semi/anti join
    /// on equality with the subquery's single output column.
    InSubquery {
        expr: Box<Expr>,
        query: Box<SelectStmt>,
        negated: bool,
    },
    /// `EXTRACT(field FROM expr)`
    Extract {
        field: DateField,
        expr: Box<Expr>,
    },
    Cast {
        expr: Box<Expr>,
        data_type: DataType,
    },
}

impl Expr {
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    pub fn qcol(qualifier: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }

    pub fn lit(v: Value) -> Expr {
        Expr::Literal(v)
    }

    pub fn binary(op: BinaryOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinaryOp::Eq, left, right)
    }

    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinaryOp::And, left, right)
    }

    /// Conjoin a list of predicates; `None` if empty.
    pub fn conjoin(preds: impl IntoIterator<Item = Expr>) -> Option<Expr> {
        preds.into_iter().reduce(Expr::and)
    }

    /// Split a predicate tree into its top-level AND conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::Binary {
                    op: BinaryOp::And,
                    left,
                    right,
                } => {
                    walk(left, out);
                    walk(right, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Same as [`Expr::conjuncts`] but consuming, returning owned conjuncts.
    pub fn into_conjuncts(self) -> Vec<Expr> {
        match self {
            Expr::Binary {
                op: BinaryOp::And,
                left,
                right,
            } => {
                let mut v = left.into_conjuncts();
                v.extend(right.into_conjuncts());
                v
            }
            other => vec![other],
        }
    }

    /// Visit every sub-expression (pre-order), including `self`.
    pub fn walk<'a>(&'a self, f: &mut dyn FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Unary { expr, .. }
            | Expr::IsNull { expr, .. }
            | Expr::Extract { expr, .. }
            | Expr::Cast { expr, .. }
            | Expr::Like { expr, .. } => expr.walk(f),
            Expr::Function { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                if let Some(op) = operand {
                    op.walk(f);
                }
                for (w, t) in branches {
                    w.walk(f);
                    t.walk(f);
                }
                if let Some(e) = else_expr {
                    e.walk(f);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            // Subqueries are separate scopes; their internals are not
            // walked as part of the enclosing expression.
            Expr::Exists { .. } | Expr::InSubquery { .. } => {
                if let Expr::InSubquery { expr, .. } = self {
                    expr.walk(f);
                }
            }
            Expr::Column { .. } | Expr::Literal(_) | Expr::Interval { .. } | Expr::CountStar => {}
        }
    }

    /// Transform every sub-expression bottom-up.
    pub fn transform(self, f: &mut dyn FnMut(Expr) -> Expr) -> Expr {
        let rebuilt = match self {
            Expr::Binary { op, left, right } => Expr::Binary {
                op,
                left: Box::new(left.transform(f)),
                right: Box::new(right.transform(f)),
            },
            Expr::Unary { op, expr } => Expr::Unary {
                op,
                expr: Box::new(expr.transform(f)),
            },
            Expr::Function {
                name,
                args,
                distinct,
            } => Expr::Function {
                name,
                args: args.into_iter().map(|a| a.transform(f)).collect(),
                distinct,
            },
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => Expr::Case {
                operand: operand.map(|o| Box::new(o.transform(f))),
                branches: branches
                    .into_iter()
                    .map(|(w, t)| (w.transform(f), t.transform(f)))
                    .collect(),
                else_expr: else_expr.map(|e| Box::new(e.transform(f))),
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(expr.transform(f)),
                low: Box::new(low.transform(f)),
                high: Box::new(high.transform(f)),
                negated,
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(expr.transform(f)),
                pattern,
                negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(expr.transform(f)),
                list: list.into_iter().map(|e| e.transform(f)).collect(),
                negated,
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.transform(f)),
                negated,
            },
            Expr::Extract { field, expr } => Expr::Extract {
                field,
                expr: Box::new(expr.transform(f)),
            },
            Expr::Cast { expr, data_type } => Expr::Cast {
                expr: Box::new(expr.transform(f)),
                data_type,
            },
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => Expr::InSubquery {
                expr: Box::new(expr.transform(f)),
                query,
                negated,
            },
            leaf @ (Expr::Column { .. }
            | Expr::Literal(_)
            | Expr::Interval { .. }
            | Expr::CountStar
            | Expr::Exists { .. }) => leaf,
        };
        f(rebuilt)
    }

    /// Collect all column references `(qualifier, name)` in this expression.
    pub fn referenced_columns(&self) -> Vec<(Option<&str>, &str)> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Column { qualifier, name } = e {
                out.push((qualifier.as_deref(), name.as_str()));
            }
        });
        out
    }

    /// True if the expression contains an aggregate function call anywhere.
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| match e {
            Expr::CountStar => found = true,
            Expr::Function { name, .. } if is_aggregate_name(name) => found = true,
            _ => {}
        });
        found
    }
}

/// Whether a function name denotes one of the supported aggregates.
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(
        name.to_ascii_uppercase().as_str(),
        "SUM" | "AVG" | "COUNT" | "MIN" | "MAX"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_splitting() {
        let e = Expr::and(
            Expr::and(Expr::col("a"), Expr::col("b")),
            Expr::binary(BinaryOp::Or, Expr::col("c"), Expr::col("d")),
        );
        let parts = e.conjuncts();
        assert_eq!(parts.len(), 3);
        let owned = e.clone().into_conjuncts();
        assert_eq!(owned.len(), 3);
        assert_eq!(Expr::conjoin(owned), Some(e));
    }

    #[test]
    fn referenced_columns_walks_everything() {
        let e = Expr::Case {
            operand: None,
            branches: vec![(
                Expr::binary(
                    BinaryOp::Lt,
                    Expr::qcol("c", "age"),
                    Expr::lit(Value::Int(30)),
                ),
                Expr::lit(Value::str("20-30")),
            )],
            else_expr: Some(Box::new(Expr::col("fallback"))),
        };
        let cols = e.referenced_columns();
        assert_eq!(cols, vec![(Some("c"), "age"), (None, "fallback")]);
    }

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Function {
            name: "sum".into(),
            args: vec![Expr::col("x")],
            distinct: false,
        };
        assert!(agg.contains_aggregate());
        assert!(Expr::CountStar.contains_aggregate());
        let scalar = Expr::Function {
            name: "abs".into(),
            args: vec![Expr::col("x")],
            distinct: false,
        };
        assert!(!scalar.contains_aggregate());
    }

    #[test]
    fn mirror_ops() {
        assert_eq!(BinaryOp::Lt.mirror(), BinaryOp::Gt);
        assert_eq!(BinaryOp::Eq.mirror(), BinaryOp::Eq);
    }

    #[test]
    fn scope_alias() {
        let t = TableRef::Table {
            name: "nation".into(),
            alias: Some("n1".into()),
        };
        assert_eq!(t.scope_alias(), Some("n1"));
        let t2 = TableRef::Table {
            name: "nation".into(),
            alias: None,
        };
        assert_eq!(t2.scope_alias(), Some("nation"));
    }

    #[test]
    fn transform_rewrites_leaves() {
        let e = Expr::and(Expr::col("a"), Expr::col("b"));
        let rewritten = e.transform(&mut |x| match x {
            Expr::Column { name, .. } if name == "a" => Expr::col("z"),
            other => other,
        });
        assert_eq!(rewritten, Expr::and(Expr::col("z"), Expr::col("b")));
    }
}
