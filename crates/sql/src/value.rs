//! Runtime values and data types shared by the SQL frontend, the embedded
//! engines, and the XDB middleware.
//!
//! A single `Value` representation is used both for literals inside SQL ASTs
//! and for tuples flowing through executors, so that a query can be rendered
//! back to SQL (delegation) without any lossy conversion.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Logical column types supported by the federation.
///
/// This is deliberately the *intersection* of what PostgreSQL, MariaDB and
/// Hive agree on for analytical workloads: 64-bit integers, double-precision
/// floats, strings, calendar dates and booleans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Int,
    Float,
    Str,
    Date,
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "BIGINT",
            DataType::Float => "DOUBLE",
            DataType::Str => "VARCHAR",
            DataType::Date => "DATE",
            DataType::Bool => "BOOLEAN",
        };
        f.write_str(s)
    }
}

impl DataType {
    /// Parse a SQL type name (as accepted in DDL) into a `DataType`.
    pub fn parse(name: &str) -> Option<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "BIGINT" | "INT" | "INTEGER" | "SMALLINT" => Some(DataType::Int),
            "DOUBLE" | "FLOAT" | "REAL" | "DECIMAL" | "NUMERIC" => Some(DataType::Float),
            "VARCHAR" | "CHAR" | "TEXT" | "STRING" => Some(DataType::Str),
            "DATE" => Some(DataType::Date),
            "BOOLEAN" | "BOOL" => Some(DataType::Bool),
            _ => None,
        }
    }
}

/// A runtime value. `Str` uses `Arc<str>` so that cloning tuples during
/// joins/aggregations does not copy string payloads (see the perf-book notes
/// on allocation-heavy inner loops).
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Str(Arc<str>),
    /// Days since 1970-01-01 (can be negative).
    Date(i32),
    Bool(bool),
}

impl Value {
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Size of this value on the (simulated) wire, in bytes. Identical for
    /// every system under test, so cross-system byte *ratios* are exact.
    pub fn wire_size(&self) -> u64 {
        match self {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => 4 + s.len() as u64,
            Value::Date(_) => 4,
            Value::Bool(_) => 1,
        }
    }

    /// Numeric view used by arithmetic and comparisons across Int/Float.
    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_date(&self) -> Option<i32> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// SQL three-valued-logic comparison. Returns `None` if either side is
    /// NULL or the types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(_), Float(_)) | (Float(_), Int(_)) => self.as_f64()?.partial_cmp(&other.as_f64()?),
            (Str(a), Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total order used by ORDER BY and sort-based operators: NULLs sort
    /// last, incomparable types sort by type tag (deterministic).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self.is_null(), other.is_null()) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Greater,
            (false, true) => return Ordering::Less,
            _ => {}
        }
        if let Some(ord) = self.sql_cmp(other) {
            return ord;
        }
        self.type_tag().cmp(&other.type_tag())
    }

    fn type_tag(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Date(_) => 4,
            Value::Str(_) => 5,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            // Note: this is *grouping* equality (NULL == NULL), as used by
            // GROUP BY and hash join build keys after null filtering.
            (Null, Null) => true,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a.to_bits() == b.to_bits(),
            (Int(_), Float(_)) | (Float(_), Int(_)) => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            },
            (Str(a), Str(b)) => a == b,
            (Date(a), Date(b)) => a == b,
            (Bool(a), Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints that fit a float hash as the float so Int/Float equality
            // stays consistent with hashing.
            Value::Int(i) => {
                3u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                3u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
            Value::Str(s) => {
                5u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => f.write_str(s),
            Value::Date(d) => f.write_str(&date::format_days(*d)),
            Value::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
        }
    }
}

/// Proleptic-Gregorian calendar date arithmetic on "days since 1970-01-01".
///
/// Implemented from scratch (no chrono) using the civil-from-days algorithm
/// of Howard Hinnant's date library, which is exact over the full i32 range.
pub mod date {
    /// Convert a calendar date to days since the Unix epoch.
    pub fn days_from_ymd(y: i32, m: u32, d: u32) -> i32 {
        debug_assert!((1..=12).contains(&m));
        debug_assert!((1..=31).contains(&d));
        let y = if m <= 2 { y - 1 } else { y };
        let era: i64 = if y >= 0 { y as i64 } else { y as i64 - 399 } / 400;
        let yoe = (y as i64 - era * 400) as u32; // [0, 399]
        let mp = (m + 9) % 12; // March = 0
        let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        (era * 146097 + doe as i64 - 719468) as i32
    }

    /// Convert days since the Unix epoch back to (year, month, day).
    pub fn ymd_from_days(days: i32) -> (i32, u32, u32) {
        let z = days as i64 + 719468;
        let era = if z >= 0 { z } else { z - 146096 } / 146097;
        let doe = (z - era * 146097) as u32; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
        let y = yoe as i64 + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
        let y = if m <= 2 { y + 1 } else { y };
        (y as i32, m, d)
    }

    /// Parse a `YYYY-MM-DD` string.
    pub fn parse(s: &str) -> Option<i32> {
        let mut parts = s.splitn(3, '-');
        let y: i32 = parts.next()?.parse().ok()?;
        let m: u32 = parts.next()?.parse().ok()?;
        let d: u32 = parts.next()?.parse().ok()?;
        if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
            return None;
        }
        Some(days_from_ymd(y, m, d))
    }

    /// Format days-since-epoch as `YYYY-MM-DD`.
    pub fn format_days(days: i32) -> String {
        let (y, m, d) = ymd_from_days(days);
        format!("{y:04}-{m:02}-{d:02}")
    }

    pub fn year_of(days: i32) -> i32 {
        ymd_from_days(days).0
    }

    pub fn month_of(days: i32) -> u32 {
        ymd_from_days(days).1
    }

    /// Add `n` calendar months, clamping the day-of-month (SQL interval
    /// semantics: Jan 31 + 1 month = Feb 28/29).
    pub fn add_months(days: i32, n: i32) -> i32 {
        let (y, m, d) = ymd_from_days(days);
        let total = y * 12 + (m as i32 - 1) + n;
        let (ny, nm) = (total.div_euclid(12), total.rem_euclid(12) as u32 + 1);
        let nd = d.min(days_in_month(ny, nm));
        days_from_ymd(ny, nm, nd)
    }

    pub fn days_in_month(y: i32, m: u32) -> u32 {
        match m {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            2 => {
                if is_leap(y) {
                    29
                } else {
                    28
                }
            }
            _ => unreachable!("invalid month"),
        }
    }

    pub fn is_leap(y: i32) -> bool {
        (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_roundtrip_epoch() {
        assert_eq!(date::days_from_ymd(1970, 1, 1), 0);
        assert_eq!(date::ymd_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn date_roundtrip_tpch_range() {
        // TPC-H dates span 1992-01-01 .. 1998-12-31.
        let start = date::days_from_ymd(1992, 1, 1);
        let end = date::days_from_ymd(1998, 12, 31);
        for d in start..=end {
            let (y, m, dd) = date::ymd_from_days(d);
            assert_eq!(date::days_from_ymd(y, m, dd), d);
        }
    }

    #[test]
    fn date_parse_format() {
        let d = date::parse("1995-03-15").unwrap();
        assert_eq!(date::format_days(d), "1995-03-15");
        assert_eq!(date::year_of(d), 1995);
        assert_eq!(date::month_of(d), 3);
        assert!(date::parse("1995-13-01").is_none());
        assert!(date::parse("nonsense").is_none());
    }

    #[test]
    fn date_add_months_clamps() {
        let jan31 = date::days_from_ymd(1995, 1, 31);
        assert_eq!(
            date::ymd_from_days(date::add_months(jan31, 1)),
            (1995, 2, 28)
        );
        let leap = date::days_from_ymd(1996, 1, 31);
        assert_eq!(
            date::ymd_from_days(date::add_months(leap, 1)),
            (1996, 2, 29)
        );
        // Across year boundary and backwards.
        let d = date::days_from_ymd(1994, 12, 15);
        assert_eq!(date::ymd_from_days(date::add_months(d, 1)), (1995, 1, 15));
        assert_eq!(
            date::ymd_from_days(date::add_months(d, -12)),
            (1993, 12, 15)
        );
    }

    #[test]
    fn leap_years() {
        assert!(date::is_leap(1996));
        assert!(!date::is_leap(1900));
        assert!(date::is_leap(2000));
    }

    #[test]
    fn value_cmp_mixed_numeric() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(1).sql_cmp(&Value::Float(1.5)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::str("a").sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn value_eq_hash_consistent_for_mixed_numeric() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(Value::Int(7), Value::Float(7.0));
        assert_eq!(h(&Value::Int(7)), h(&Value::Float(7.0)));
    }

    #[test]
    fn total_cmp_nulls_last() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(1)), Ordering::Greater);
        assert_eq!(Value::Int(1).total_cmp(&Value::Null), Ordering::Less);
        assert_eq!(Value::Null.total_cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(Value::Int(5).wire_size(), 8);
        assert_eq!(Value::str("abc").wire_size(), 7);
        assert_eq!(Value::Null.wire_size(), 1);
        assert_eq!(Value::Date(0).wire_size(), 4);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Float(1.5).to_string(), "1.5");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(
            Value::Date(date::parse("1998-12-01").unwrap()).to_string(),
            "1998-12-01"
        );
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn datatype_parse() {
        assert_eq!(DataType::parse("bigint"), Some(DataType::Int));
        assert_eq!(DataType::parse("VARCHAR"), Some(DataType::Str));
        assert_eq!(DataType::parse("blob"), None);
    }
}
