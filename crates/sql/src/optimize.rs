//! Rule/cost-based logical optimization shared by the local engines and the
//! XDB cross-database optimizer (Section IV-B1).
//!
//! Three passes:
//! 1. **SPJ normalization**: collect each select-project-join region into a
//!    join graph (relations + predicates) and classify predicates into
//!    per-relation filters, equi-join edges, and residual conditions;
//! 2. **join ordering**: left-deep enumeration (exhaustive DP for up to
//!    [`DP_RELATION_LIMIT`] relations, greedy beyond) minimizing the total
//!    estimated intermediate cardinality — the paper restricts itself to
//!    left-deep trees (footnote 5);
//! 3. **column pruning**: projection pushdown to the leaves, which is what
//!    keeps inter-DBMS transfers small.

use crate::algebra::{LogicalPlan, PlanSchema};
use crate::ast::{BinaryOp, Expr};
use crate::stats::{Estimator, StatsProvider};

/// Maximum region size for exhaustive left-deep DP enumeration.
pub const DP_RELATION_LIMIT: usize = 10;

/// Join-tree shape the enumerator may produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinShape {
    /// Left-deep only — the paper's setting (footnote 5).
    #[default]
    LeftDeep,
    /// Full bushy enumeration — the paper's future-work extension: bushy
    /// trees expose independent subtrees that decentralized execution can
    /// pipeline in parallel.
    Bushy,
}

/// Knobs for the optimizer (ablation benches flip these).
#[derive(Debug, Clone, Copy)]
pub struct OptimizeOptions {
    /// Reorder joins (off = keep the user's FROM order).
    pub reorder_joins: bool,
    /// Push projections down to the leaves.
    pub prune_columns: bool,
    /// Shape of the enumerated join trees.
    pub join_shape: JoinShape,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        OptimizeOptions {
            reorder_joins: true,
            prune_columns: true,
            join_shape: JoinShape::LeftDeep,
        }
    }
}

/// Optimize a bound logical plan.
pub fn optimize(
    plan: LogicalPlan,
    stats: &dyn StatsProvider,
    options: OptimizeOptions,
) -> LogicalPlan {
    let ctx = Ctx {
        est: Estimator::new(stats),
        options,
    };
    let plan = ctx.rewrite(plan);
    if options.prune_columns {
        prune(plan, None)
    } else {
        plan
    }
}

struct Ctx<'a> {
    est: Estimator<'a>,
    options: OptimizeOptions,
}

impl<'a> Ctx<'a> {
    fn rewrite(&self, plan: LogicalPlan) -> LogicalPlan {
        match plan {
            LogicalPlan::Filter { .. } | LogicalPlan::Join { .. } => self.spj_region(plan),
            LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
                input: Box::new(self.rewrite(*input)),
                exprs,
            },
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggregates,
            } => LogicalPlan::Aggregate {
                input: Box::new(self.rewrite(*input)),
                group_by,
                aggregates,
            },
            LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
                input: Box::new(self.rewrite(*input)),
                keys,
            },
            LogicalPlan::Limit { input, fetch } => LogicalPlan::Limit {
                input: Box::new(self.rewrite(*input)),
                fetch,
            },
            LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
                input: Box::new(self.rewrite(*input)),
            },
            LogicalPlan::SubqueryAlias { input, alias } => LogicalPlan::SubqueryAlias {
                input: Box::new(self.rewrite(*input)),
                alias,
            },
            // Semi joins bound an optimization region: each side is
            // optimized independently (predicates must not cross them).
            LogicalPlan::SemiJoin {
                left,
                right,
                on,
                residual,
                negated,
            } => LogicalPlan::SemiJoin {
                left: Box::new(self.rewrite(*left)),
                right: Box::new(self.rewrite(*right)),
                on,
                residual,
                negated,
            },
            leaf => leaf,
        }
    }

    /// Normalize and reorder one select-project-join region.
    fn spj_region(&self, root: LogicalPlan) -> LogicalPlan {
        let mut relations: Vec<LogicalPlan> = Vec::new();
        let mut predicates: Vec<Expr> = Vec::new();
        self.collect_region(root, &mut relations, &mut predicates);

        let schemas: Vec<PlanSchema> = relations.iter().map(|r| r.schema()).collect();

        // Classify predicates.
        let mut filters: Vec<Vec<Expr>> = vec![Vec::new(); relations.len()];
        let mut edges: Vec<JoinEdge> = Vec::new();
        let mut residuals: Vec<(u64, Expr)> = Vec::new(); // (relation bitset, predicate)
        for pred in predicates {
            match classify(&pred, &schemas) {
                Classified::Single(i) => filters[i].push(pred),
                Classified::EquiEdge(e) => edges.push(e),
                Classified::Multi(mask) => residuals.push((mask, pred)),
                Classified::Constant => residuals.push((0, pred)),
            }
        }

        // Apply per-relation filters.
        let leaves: Vec<LogicalPlan> = relations
            .into_iter()
            .enumerate()
            .map(
                |(i, r)| match Expr::conjoin(std::mem::take(&mut filters[i])) {
                    Some(p) => r.filter(p),
                    None => r,
                },
            )
            .collect();

        if leaves.len() == 1 {
            let mut plan = leaves.into_iter().next().unwrap();
            for (_, pred) in residuals {
                plan = plan.filter(pred);
            }
            return plan;
        }

        // Bushy enumeration builds the tree directly.
        if self.options.reorder_joins
            && self.options.join_shape == JoinShape::Bushy
            && leaves.len() <= DP_RELATION_LIMIT
        {
            return self.bushy_plan(leaves, &edges, residuals);
        }

        // Choose a join order.
        let order = if self.options.reorder_joins {
            self.order_joins(&leaves, &edges)
        } else {
            (0..leaves.len()).collect()
        };

        // Assemble the left-deep tree, attaching edges and residuals as
        // soon as all their relations are present.
        let mut in_tree: u64 = 0;
        let mut used_edges = vec![false; edges.len()];
        let mut used_residuals = vec![false; residuals.len()];
        let mut iter = order.into_iter();
        let first = iter.next().unwrap();
        in_tree |= 1 << first;
        let mut leaves_opt: Vec<Option<LogicalPlan>> = leaves.into_iter().map(Some).collect();
        let mut plan = leaves_opt[first].take().unwrap();
        for idx in iter {
            let right = leaves_opt[idx].take().unwrap();
            let mut on = Vec::new();
            for (ei, e) in edges.iter().enumerate() {
                if used_edges[ei] {
                    continue;
                }
                if let Some((l, r)) = e.orient(in_tree, idx) {
                    on.push((l, r));
                    used_edges[ei] = true;
                }
            }
            in_tree |= 1 << idx;
            let mut residual_here: Vec<Expr> = Vec::new();
            for (ri, (mask, pred)) in residuals.iter().enumerate() {
                if !used_residuals[ri] && *mask != 0 && mask & !in_tree == 0 {
                    residual_here.push(pred.clone());
                    used_residuals[ri] = true;
                }
            }
            plan = LogicalPlan::Join {
                left: Box::new(plan),
                right: Box::new(right),
                on,
                residual: Expr::conjoin(residual_here),
            };
        }
        // Anything left over (constants, or predicates that failed
        // classification) goes on top.
        let leftover: Vec<Expr> = residuals
            .into_iter()
            .zip(used_residuals)
            .filter(|(_, used)| !used)
            .map(|((_, p), _)| p)
            .collect();
        // Unused edges become residual equality filters on top (can happen
        // only with disconnected self-referencing predicates).
        let unused_edge_preds: Vec<Expr> = edges
            .into_iter()
            .zip(used_edges)
            .filter(|(_, used)| !used)
            .map(|(e, _)| Expr::eq(e.left, e.right))
            .collect();
        match Expr::conjoin(leftover.into_iter().chain(unused_edge_preds)) {
            Some(p) => plan.filter(p),
            None => plan,
        }
    }

    /// Exhaustive bushy join enumeration over one region: classic subset
    /// DP where each subset's best plan may split into any partition, not
    /// just (subset minus one relation, relation). Residual predicates
    /// attach at the join where their relations first meet — a condition
    /// of the two side-masks only, so it is consistent across candidate
    /// splits.
    fn bushy_plan(
        &self,
        leaves: Vec<LogicalPlan>,
        edges: &[JoinEdge],
        residuals: Vec<(u64, Expr)>,
    ) -> LogicalPlan {
        let n = leaves.len();
        #[derive(Clone)]
        struct Entry {
            cost: f64,
            plan: LogicalPlan,
        }
        let full: u64 = (1 << n) - 1;
        let mut best: Vec<Option<Entry>> = vec![None; 1 << n];
        for (i, leaf) in leaves.iter().enumerate() {
            best[1 << i] = Some(Entry {
                cost: 0.0,
                plan: leaf.clone(),
            });
        }
        let join_of = |lmask: u64, rmask: u64, l: &LogicalPlan, r: &LogicalPlan| {
            let mut on = Vec::new();
            for e in edges {
                if let Some((le, re)) = e.orient_sets(lmask, rmask) {
                    on.push((le, re));
                }
            }
            let combined = lmask | rmask;
            let residual_here: Vec<Expr> = residuals
                .iter()
                .filter(|(m, _)| {
                    *m != 0 && m & !combined == 0 && m & !lmask != 0 && m & !rmask != 0
                })
                .map(|(_, p)| p.clone())
                .collect();
            let connected = !on.is_empty();
            let joined = LogicalPlan::Join {
                left: Box::new(l.clone()),
                right: Box::new(r.clone()),
                on,
                residual: Expr::conjoin(residual_here),
            };
            (joined, connected)
        };
        for mask in 1u64..=full {
            if mask.count_ones() < 2 {
                continue;
            }
            // Enumerate proper sub-splits; `s > mask ^ s` halves the
            // symmetric pairs.
            let mut s = (mask - 1) & mask;
            while s > 0 {
                let t = mask ^ s;
                if s > t {
                    let pair = match (&best[s as usize], &best[t as usize]) {
                        (Some(ls), Some(rs)) => Some((ls.clone(), rs.clone())),
                        _ => None,
                    };
                    if let Some((ls, rs)) = pair {
                        for (lmask, rmask, le, re) in [(s, t, &ls, &rs), (t, s, &rs, &ls)] {
                            let (joined, connected) = join_of(lmask, rmask, &le.plan, &re.plan);
                            let rows = self.est.rows(&joined);
                            let step = if connected { rows } else { rows * 1e6 };
                            let cost = le.cost + re.cost + step;
                            let better = match &best[mask as usize] {
                                Some(e) => cost < e.cost,
                                None => true,
                            };
                            if better {
                                best[mask as usize] = Some(Entry { cost, plan: joined });
                            }
                        }
                    }
                }
                s = (s - 1) & mask;
            }
        }
        let plan = best[full as usize]
            .take()
            .expect("full subset always has a plan")
            .plan;
        // Residuals that never attached (constants / unresolvable) plus a
        // final guard for predicates over a single relation set.
        let mut attached = vec![false; residuals.len()];
        fn mark_attached(plan: &LogicalPlan, residuals: &[(u64, Expr)], attached: &mut [bool]) {
            if let LogicalPlan::Join {
                residual: Some(res),
                ..
            } = plan
            {
                for part in res.conjuncts() {
                    for (i, (_, p)) in residuals.iter().enumerate() {
                        if !attached[i] && p == part {
                            attached[i] = true;
                            break;
                        }
                    }
                }
            }
            for c in plan.children() {
                mark_attached(c, residuals, attached);
            }
        }
        mark_attached(&plan, &residuals, &mut attached);
        let leftover: Vec<Expr> = residuals
            .into_iter()
            .zip(attached)
            .filter(|(_, a)| !a)
            .map(|((_, p), _)| p)
            .collect();
        match Expr::conjoin(leftover) {
            Some(p) => plan.filter(p),
            None => plan,
        }
    }

    fn collect_region(
        &self,
        node: LogicalPlan,
        relations: &mut Vec<LogicalPlan>,
        predicates: &mut Vec<Expr>,
    ) {
        match node {
            LogicalPlan::Filter { input, predicate } => {
                predicates.extend(predicate.into_conjuncts());
                self.collect_region(*input, relations, predicates);
            }
            LogicalPlan::Join {
                left,
                right,
                on,
                residual,
            } => {
                self.collect_region(*left, relations, predicates);
                self.collect_region(*right, relations, predicates);
                for (l, r) in on {
                    predicates.push(Expr::eq(l, r));
                }
                if let Some(res) = residual {
                    predicates.extend(res.into_conjuncts());
                }
            }
            other => relations.push(self.rewrite(other)),
        }
    }

    /// Left-deep join ordering minimizing the sum of intermediate result
    /// cardinalities. Exhaustive DP for small regions, greedy otherwise.
    fn order_joins(&self, leaves: &[LogicalPlan], edges: &[JoinEdge]) -> Vec<usize> {
        let n = leaves.len();
        if n <= DP_RELATION_LIMIT {
            self.order_joins_dp(leaves, edges)
        } else {
            self.order_joins_greedy(leaves, edges)
        }
    }

    /// Pre-computed per-leaf cardinalities and per-edge distinct counts so
    /// enumeration costs are pure arithmetic (no plan cloning, no repeated
    /// estimator recursion — this is what keeps Q8's 8-relation DP in the
    /// hundreds of microseconds).
    fn enumeration_stats(
        &self,
        leaves: &[LogicalPlan],
        edges: &[JoinEdge],
    ) -> (Vec<f64>, Vec<f64>) {
        let leaf_rows: Vec<f64> = leaves.iter().map(|l| self.est.rows(l)).collect();
        let edge_distinct: Vec<f64> = edges
            .iter()
            .map(|e| {
                let dl = self
                    .est
                    .expr_distinct(&e.left, &leaves[e.left_rel])
                    .unwrap_or(leaf_rows[e.left_rel] * crate::stats::DEFAULT_EQ_SELECTIVITY);
                let dr = self
                    .est
                    .expr_distinct(&e.right, &leaves[e.right_rel])
                    .unwrap_or(leaf_rows[e.right_rel] * crate::stats::DEFAULT_EQ_SELECTIVITY);
                dl.max(dr).max(1.0)
            })
            .collect();
        (leaf_rows, edge_distinct)
    }

    /// Cardinality of joining two disjoint subsets, from the
    /// pre-computed enumeration statistics. Mirrors the estimator's join
    /// formula: cross product divided by max-distinct per crossing edge.
    fn subset_join_rows(
        lmask: u64,
        rmask: u64,
        lrows: f64,
        rrows: f64,
        edges: &[JoinEdge],
        edge_distinct: &[f64],
    ) -> (f64, bool) {
        let mut card = lrows * rrows;
        let mut connected = false;
        for (e, d) in edges.iter().zip(edge_distinct) {
            let lbit = 1u64 << e.left_rel;
            let rbit = 1u64 << e.right_rel;
            let crosses = (lmask & lbit != 0 && rmask & rbit != 0)
                || (lmask & rbit != 0 && rmask & lbit != 0);
            if crosses {
                card /= d;
                connected = true;
            }
        }
        (card.max(1.0), connected)
    }

    fn order_joins_dp(&self, leaves: &[LogicalPlan], edges: &[JoinEdge]) -> Vec<usize> {
        let n = leaves.len();
        let (leaf_rows, edge_distinct) = self.enumeration_stats(leaves, edges);
        #[derive(Clone, Copy)]
        struct Entry {
            cost: f64,
            rows: f64,
            /// Last relation added + predecessor mask, for reconstruction.
            last: usize,
        }
        let full: u64 = (1 << n) - 1;
        let mut best: Vec<Option<Entry>> = vec![None; 1 << n];
        for (i, rows) in leaf_rows.iter().enumerate() {
            best[1 << i] = Some(Entry {
                cost: 0.0,
                rows: *rows,
                last: i,
            });
        }
        for size in 1..n {
            for mask in 1u64..=full {
                if mask.count_ones() as usize != size {
                    continue;
                }
                let Some(entry) = best[mask as usize] else {
                    continue;
                };
                for (idx, idx_rows) in leaf_rows.iter().enumerate() {
                    if mask & (1 << idx) != 0 {
                        continue;
                    }
                    let (rows, connected) = Self::subset_join_rows(
                        mask,
                        1 << idx,
                        entry.rows,
                        *idx_rows,
                        edges,
                        &edge_distinct,
                    );
                    // Penalize cross joins heavily but keep them feasible.
                    let step_cost = if connected { rows } else { rows * 1e6 };
                    let cost = entry.cost + step_cost;
                    let next = (mask | (1 << idx)) as usize;
                    let better = match &best[next] {
                        Some(e) => cost < e.cost,
                        None => true,
                    };
                    if better {
                        best[next] = Some(Entry {
                            cost,
                            rows,
                            last: idx,
                        });
                    }
                }
            }
        }
        // Reconstruct the order by walking predecessor masks.
        let mut order = Vec::with_capacity(n);
        let mut mask = full;
        while mask != 0 {
            let Some(entry) = best[mask as usize] else {
                return (0..n).collect();
            };
            order.push(entry.last);
            mask &= !(1 << entry.last);
        }
        order.reverse();
        order
    }

    fn order_joins_greedy(&self, leaves: &[LogicalPlan], edges: &[JoinEdge]) -> Vec<usize> {
        let n = leaves.len();
        let (leaf_rows, edge_distinct) = self.enumeration_stats(leaves, edges);
        // Start from the smallest relation.
        let mut start = 0;
        let mut start_rows = f64::INFINITY;
        for (i, r) in leaf_rows.iter().enumerate() {
            if *r < start_rows {
                start_rows = *r;
                start = i;
            }
        }
        let mut order = vec![start];
        let mut mask: u64 = 1 << start;
        let mut current_rows = start_rows;
        while order.len() < n {
            let mut pick: Option<(usize, f64, f64)> = None;
            for (idx, idx_rows) in leaf_rows.iter().enumerate() {
                if mask & (1 << idx) != 0 {
                    continue;
                }
                let (rows, connected) = Self::subset_join_rows(
                    mask,
                    1 << idx,
                    current_rows,
                    *idx_rows,
                    edges,
                    &edge_distinct,
                );
                let cost = if connected { rows } else { rows * 1e6 };
                let better = match &pick {
                    Some((_, c, _)) => cost < *c,
                    None => true,
                };
                if better {
                    pick = Some((idx, cost, rows));
                }
            }
            let (idx, _, rows) = pick.expect("there is always an unused relation");
            order.push(idx);
            mask |= 1 << idx;
            current_rows = rows;
        }
        order
    }
}

/// An equi-join edge between two relations of a region.
#[derive(Debug, Clone)]
struct JoinEdge {
    left_rel: usize,
    right_rel: usize,
    left: Expr,
    right: Expr,
}

impl JoinEdge {
    /// If this edge connects subset `left_mask` with subset `right_mask`,
    /// return `(left_side_expr, right_side_expr)`.
    fn orient_sets(&self, left_mask: u64, right_mask: u64) -> Option<(Expr, Expr)> {
        let lbit = 1u64 << self.left_rel;
        let rbit = 1u64 << self.right_rel;
        if left_mask & lbit != 0 && right_mask & rbit != 0 {
            Some((self.left.clone(), self.right.clone()))
        } else if left_mask & rbit != 0 && right_mask & lbit != 0 {
            Some((self.right.clone(), self.left.clone()))
        } else {
            None
        }
    }

    /// If this edge connects the partial tree `mask` with leaf `idx`,
    /// return `(tree_side_expr, leaf_side_expr)`.
    fn orient(&self, mask: u64, idx: usize) -> Option<(Expr, Expr)> {
        let lbit = 1u64 << self.left_rel;
        let rbit = 1u64 << self.right_rel;
        if mask & lbit != 0 && idx == self.right_rel {
            Some((self.left.clone(), self.right.clone()))
        } else if mask & rbit != 0 && idx == self.left_rel {
            Some((self.right.clone(), self.left.clone()))
        } else {
            None
        }
    }
}

enum Classified {
    Single(usize),
    EquiEdge(JoinEdge),
    Multi(u64),
    Constant,
}

/// Relation bitmask referenced by an expression, resolved against the
/// per-relation schemas. `None` if some column resolves nowhere.
fn relations_of(e: &Expr, schemas: &[PlanSchema]) -> Option<u64> {
    let mut mask = 0u64;
    let mut ok = true;
    e.walk(&mut |x| {
        if let Expr::Column { qualifier, name } = x {
            let mut found = None;
            for (i, s) in schemas.iter().enumerate() {
                if s.resolve(qualifier.as_deref(), name).is_ok() {
                    if found.is_some() {
                        // Ambiguous across relations — binder would have
                        // rejected this; treat conservatively.
                        ok = false;
                    }
                    found = Some(i);
                }
            }
            match found {
                Some(i) => mask |= 1 << i,
                None => ok = false,
            }
        }
    });
    ok.then_some(mask)
}

fn classify(pred: &Expr, schemas: &[PlanSchema]) -> Classified {
    let Some(mask) = relations_of(pred, schemas) else {
        // Unresolvable: keep as a top-level residual over everything.
        return Classified::Multi((1 << schemas.len()) - 1);
    };
    match mask.count_ones() {
        0 => Classified::Constant,
        1 => Classified::Single(mask.trailing_zeros() as usize),
        2 => {
            // Equi-join edge if it is `lhs = rhs` with each side on one
            // relation.
            if let Expr::Binary {
                op: BinaryOp::Eq,
                left,
                right,
            } = pred
            {
                if let (Some(lm), Some(rm)) =
                    (relations_of(left, schemas), relations_of(right, schemas))
                {
                    if lm.count_ones() == 1 && rm.count_ones() == 1 && lm != rm {
                        return Classified::EquiEdge(JoinEdge {
                            left_rel: lm.trailing_zeros() as usize,
                            right_rel: rm.trailing_zeros() as usize,
                            left: (**left).clone(),
                            right: (**right).clone(),
                        });
                    }
                }
            }
            Classified::Multi(mask)
        }
        _ => Classified::Multi(mask),
    }
}

// ---------------------------------------------------------------------------
// Column pruning (projection pushdown).
// ---------------------------------------------------------------------------

/// A column requirement: qualifier (if any) and name.
type Need = (Option<String>, String);

fn needs_of(e: &Expr, out: &mut Vec<Need>) {
    e.walk(&mut |x| {
        if let Expr::Column { qualifier, name } = x {
            let need = (qualifier.clone(), name.clone());
            if !out.contains(&need) {
                out.push(need);
            }
        }
    });
}

/// Does `field` (with its qualifier) satisfy requirement `need`?
fn satisfies(field_qualifier: Option<&str>, field_name: &str, need: &Need) -> bool {
    if !need.1.eq_ignore_ascii_case(field_name) {
        return false;
    }
    match (&need.0, field_qualifier) {
        (None, _) => true,
        (Some(q), Some(fq)) => q.eq_ignore_ascii_case(fq),
        (Some(_), None) => false,
    }
}

/// Prune unused columns. `required == None` keeps everything (the root).
fn prune(plan: LogicalPlan, required: Option<&[Need]>) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan {
            relation,
            alias,
            fields,
        } => {
            let fields = match required {
                Some(req) => {
                    let kept: Vec<(String, crate::value::DataType)> = fields
                        .iter()
                        .filter(|(n, _)| req.iter().any(|need| satisfies(Some(&alias), n, need)))
                        .cloned()
                        .collect();
                    if kept.is_empty() {
                        // Keep one column so the scan still produces rows
                        // (e.g. `count(*)`).
                        fields.into_iter().take(1).collect()
                    } else {
                        kept
                    }
                }
                None => fields,
            };
            LogicalPlan::Scan {
                relation,
                alias,
                fields,
            }
        }
        LogicalPlan::Placeholder {
            name,
            alias,
            fields,
        } => {
            // Placeholders stand in for another task's already-shaped
            // output; never prune them here.
            LogicalPlan::Placeholder {
                name,
                alias,
                fields,
            }
        }
        LogicalPlan::OneRow => LogicalPlan::OneRow,
        LogicalPlan::Filter { input, predicate } => {
            let mut needs: Vec<Need> = required.map(<[Need]>::to_vec).unwrap_or_default();
            let all = required.is_none();
            needs_of(&predicate, &mut needs);
            let input = prune(*input, if all { None } else { Some(&needs) });
            LogicalPlan::Filter {
                input: Box::new(input),
                predicate,
            }
        }
        LogicalPlan::Project { input, exprs } => {
            let exprs: Vec<(Expr, String)> = match required {
                Some(req) => {
                    let kept: Vec<(Expr, String)> = exprs
                        .iter()
                        .filter(|(_, n)| req.iter().any(|need| satisfies(None, n, need)))
                        .cloned()
                        .collect();
                    if kept.is_empty() {
                        exprs.into_iter().take(1).collect()
                    } else {
                        kept
                    }
                }
                None => exprs,
            };
            let mut needs = Vec::new();
            for (e, _) in &exprs {
                needs_of(e, &mut needs);
            }
            LogicalPlan::Project {
                input: Box::new(prune(*input, Some(&needs))),
                exprs,
            }
        }
        LogicalPlan::SemiJoin {
            left,
            right,
            on,
            residual,
            negated,
        } => {
            // Left keeps the caller's requirements plus its join keys;
            // right keeps only its join keys (+ any residual references).
            let mut lneeds: Vec<Need> = required.map(<[Need]>::to_vec).unwrap_or_default();
            let keep_all = required.is_none();
            let mut rneeds: Vec<Need> = Vec::new();
            for (l, r) in &on {
                needs_of(l, &mut lneeds);
                needs_of(r, &mut rneeds);
            }
            if let Some(res) = &residual {
                needs_of(res, &mut lneeds);
                needs_of(res, &mut rneeds);
            }
            LogicalPlan::SemiJoin {
                left: Box::new(prune(*left, if keep_all { None } else { Some(&lneeds) })),
                right: Box::new(prune(*right, Some(&rneeds))),
                on,
                residual,
                negated,
            }
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            residual,
        } => {
            let mut needs: Vec<Need> = required.map(<[Need]>::to_vec).unwrap_or_default();
            let keep_all = required.is_none();
            for (l, r) in &on {
                needs_of(l, &mut needs);
                needs_of(r, &mut needs);
            }
            if let Some(res) = &residual {
                needs_of(res, &mut needs);
            }
            let (lp, rp) = if keep_all {
                (prune(*left, None), prune(*right, None))
            } else {
                // Split needs by which side can satisfy them; pass
                // ambiguous bare names to both sides (over-keeping is
                // safe).
                let ls = left.schema();
                let rs = right.schema();
                let mut lneeds = Vec::new();
                let mut rneeds = Vec::new();
                for need in needs {
                    let in_l = ls.resolve(need.0.as_deref(), &need.1).is_ok();
                    let in_r = rs.resolve(need.0.as_deref(), &need.1).is_ok();
                    if in_l {
                        lneeds.push(need.clone());
                    }
                    if in_r || !in_l {
                        rneeds.push(need);
                    }
                }
                (prune(*left, Some(&lneeds)), prune(*right, Some(&rneeds)))
            };
            LogicalPlan::Join {
                left: Box::new(lp),
                right: Box::new(rp),
                on,
                residual,
            }
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            let mut needs = Vec::new();
            for (e, _) in &group_by {
                needs_of(e, &mut needs);
            }
            for (a, _) in &aggregates {
                if let Some(arg) = &a.arg {
                    needs_of(arg, &mut needs);
                }
            }
            LogicalPlan::Aggregate {
                input: Box::new(prune(*input, Some(&needs))),
                group_by,
                aggregates,
            }
        }
        LogicalPlan::Sort { input, keys } => {
            let mut needs: Vec<Need> = required.map(<[Need]>::to_vec).unwrap_or_default();
            let all = required.is_none();
            for (e, _) in &keys {
                needs_of(e, &mut needs);
            }
            LogicalPlan::Sort {
                input: Box::new(prune(*input, if all { None } else { Some(&needs) })),
                keys,
            }
        }
        LogicalPlan::Limit { input, fetch } => LogicalPlan::Limit {
            input: Box::new(prune(*input, required)),
            fetch,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            // DISTINCT semantics depend on the full row; keep everything.
            input: Box::new(prune(*input, None)),
        },
        LogicalPlan::SubqueryAlias { input, alias } => {
            let inner_required: Option<Vec<Need>> = required.map(|req| {
                req.iter()
                    .filter(|(q, _)| q.as_deref().is_none_or(|q| q.eq_ignore_ascii_case(&alias)))
                    .map(|(_, n)| (None, n.clone()))
                    .collect()
            });
            LogicalPlan::SubqueryAlias {
                input: Box::new(prune(*input, inner_required.as_deref())),
                alias,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::{bind_select, ResolvedRelation, SchemaProvider};
    use crate::parser::parse_select;
    use crate::stats::{ColumnStats, NoStats};
    use crate::value::{DataType, Value};
    use std::collections::HashMap;

    struct TestCatalog {
        relations: HashMap<String, ResolvedRelation>,
        rows: HashMap<String, f64>,
        distinct: HashMap<(String, String), f64>,
    }

    impl SchemaProvider for TestCatalog {
        fn resolve_relation(&self, name: &str) -> Option<ResolvedRelation> {
            self.relations.get(&name.to_ascii_lowercase()).cloned()
        }
    }

    impl StatsProvider for TestCatalog {
        fn table_rows(&self, relation: &str) -> Option<f64> {
            self.rows.get(&relation.to_ascii_lowercase()).copied()
        }

        fn column_stats(&self, relation: &str, column: &str) -> Option<ColumnStats> {
            self.distinct
                .get(&(relation.to_ascii_lowercase(), column.to_ascii_lowercase()))
                .map(|d| ColumnStats {
                    n_distinct: *d,
                    min: None,
                    max: None,
                })
        }
    }

    fn catalog() -> TestCatalog {
        let mut relations = HashMap::new();
        let mut rows = HashMap::new();
        let mut distinct = HashMap::new();
        for (name, cols, count) in [
            (
                "customer",
                vec![
                    ("c_custkey", DataType::Int),
                    ("c_name", DataType::Str),
                    ("c_mktsegment", DataType::Str),
                    ("c_nationkey", DataType::Int),
                ],
                1500.0,
            ),
            (
                "orders",
                vec![
                    ("o_orderkey", DataType::Int),
                    ("o_custkey", DataType::Int),
                    ("o_orderdate", DataType::Date),
                ],
                15000.0,
            ),
            (
                "lineitem",
                vec![
                    ("l_orderkey", DataType::Int),
                    ("l_extendedprice", DataType::Float),
                    ("l_discount", DataType::Float),
                    ("l_shipdate", DataType::Date),
                ],
                60000.0,
            ),
            (
                "nation",
                vec![("n_nationkey", DataType::Int), ("n_name", DataType::Str)],
                25.0,
            ),
        ] {
            relations.insert(
                name.to_string(),
                ResolvedRelation::Base {
                    fields: cols.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
                },
            );
            rows.insert(name.to_string(), count);
            for (c, _) in cols {
                let d = match c {
                    "c_custkey" => 1500.0,
                    "o_orderkey" => 15000.0,
                    "o_custkey" => 1000.0,
                    "l_orderkey" => 15000.0,
                    "n_nationkey" => 25.0,
                    _ => count / 10.0,
                };
                distinct.insert((name.to_string(), c.to_string()), d);
            }
        }
        TestCatalog {
            relations,
            rows,
            distinct,
        }
    }

    fn opt(sql: &str) -> LogicalPlan {
        let cat = catalog();
        let plan = bind_select(&parse_select(sql).unwrap(), &cat).unwrap();
        optimize(plan, &cat, OptimizeOptions::default())
    }

    /// Collect join order as the sequence of scan relations, left-deep.
    fn scan_order(plan: &LogicalPlan) -> Vec<String> {
        let mut out = Vec::new();
        fn walk(p: &LogicalPlan, out: &mut Vec<String>) {
            if let LogicalPlan::Scan { relation, .. } = p {
                out.push(relation.clone());
            }
            for c in p.children() {
                walk(c, out);
            }
        }
        walk(plan, &mut out);
        out
    }

    #[test]
    fn filters_pushed_to_scans() {
        let plan = opt(
            "SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey AND c_mktsegment = 'BUILDING'",
        );
        let tree = plan.tree_string();
        // The segment filter must sit directly above the customer scan,
        // below the join.
        let seg = tree.find("c_mktsegment").unwrap();
        let join = tree.find("Join").unwrap();
        assert!(seg > join, "filter should be below the join: {tree}");
    }

    #[test]
    fn join_order_starts_small() {
        let plan = opt("SELECT c_name FROM lineitem, orders, customer \
             WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey");
        let order = scan_order(&plan);
        // customer (1.5k) or orders should come before lineitem (60k) as
        // the leftmost; lineitem must not be first.
        assert_ne!(order[0], "lineitem", "{order:?}");
    }

    #[test]
    fn no_cross_products_when_connected() {
        let plan = opt(
            "SELECT c_name FROM customer, orders, lineitem, nation \
             WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey AND c_nationkey = n_nationkey",
        );
        // Every Join node must have at least one equi condition.
        fn check(p: &LogicalPlan) {
            if let LogicalPlan::Join { on, .. } = p {
                assert!(!on.is_empty(), "cross join in {}", p.tree_string());
            }
            for c in p.children() {
                check(c);
            }
        }
        check(&plan);
    }

    #[test]
    fn columns_pruned_at_scans() {
        let plan = opt("SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey");
        fn scan_widths(p: &LogicalPlan, out: &mut Vec<(String, usize)>) {
            if let LogicalPlan::Scan {
                relation, fields, ..
            } = p
            {
                out.push((relation.clone(), fields.len()));
            }
            for c in p.children() {
                scan_widths(c, out);
            }
        }
        let mut widths = Vec::new();
        scan_widths(&plan, &mut widths);
        for (rel, w) in widths {
            match rel.as_str() {
                "customer" => assert_eq!(w, 2, "c_name + c_custkey"),
                "orders" => assert_eq!(w, 1, "o_custkey only"),
                other => panic!("unexpected scan {other}"),
            }
        }
    }

    #[test]
    fn residual_or_predicate_placed_at_join() {
        let plan = opt("SELECT c_name FROM customer, nation \
             WHERE c_nationkey = n_nationkey AND (c_mktsegment = 'A' OR n_name = 'B')");
        fn has_residual(p: &LogicalPlan) -> bool {
            if let LogicalPlan::Join { residual, .. } = p {
                if residual.is_some() {
                    return true;
                }
            }
            p.children().iter().any(|c| has_residual(c))
        }
        assert!(has_residual(&plan), "{}", plan.tree_string());
    }

    #[test]
    fn semantics_preserving_shape() {
        // Optimized plan schema equals the bound plan schema (names/types).
        let cat = catalog();
        let sql = "SELECT c_name, sum(l_extendedprice * (1 - l_discount)) AS rev \
                   FROM customer, orders, lineitem \
                   WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey \
                   GROUP BY c_name ORDER BY rev DESC LIMIT 5";
        let bound = bind_select(&parse_select(sql).unwrap(), &cat).unwrap();
        let optimized = optimize(bound.clone(), &cat, OptimizeOptions::default());
        assert_eq!(
            bound
                .schema()
                .fields
                .iter()
                .map(|f| &f.name)
                .collect::<Vec<_>>(),
            optimized
                .schema()
                .fields
                .iter()
                .map(|f| &f.name)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn reorder_can_be_disabled() {
        let cat = catalog();
        let sql = "SELECT c_name FROM lineitem, orders, customer \
                   WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey";
        let plan = bind_select(&parse_select(sql).unwrap(), &cat).unwrap();
        let fixed = optimize(
            plan,
            &cat,
            OptimizeOptions {
                reorder_joins: false,
                prune_columns: false,
                join_shape: JoinShape::LeftDeep,
            },
        );
        assert_eq!(scan_order(&fixed), vec!["lineitem", "orders", "customer"]);
    }

    #[test]
    fn single_relation_region() {
        let plan = opt("SELECT c_name FROM customer WHERE c_mktsegment = 'X'");
        assert!(matches!(plan, LogicalPlan::Project { .. }));
    }

    #[test]
    fn greedy_used_beyond_dp_limit() {
        // Build a star query with 11 relations joined to a hub — exceeds
        // DP_RELATION_LIMIT and exercises the greedy path.
        let mut relations = HashMap::new();
        let mut rows = HashMap::new();
        let mut fields = vec![("hub_id".to_string(), DataType::Int)];
        for i in 0..11 {
            relations.insert(
                format!("dim{i}"),
                ResolvedRelation::Base {
                    fields: vec![(format!("d{i}_id"), DataType::Int)],
                },
            );
            rows.insert(format!("dim{i}"), 10.0 * (i as f64 + 1.0));
            fields.push((format!("d{i}_ref"), DataType::Int));
        }
        relations.insert("hub".to_string(), ResolvedRelation::Base { fields });
        rows.insert("hub".to_string(), 10000.0);
        let cat = TestCatalog {
            relations,
            rows,
            distinct: HashMap::new(),
        };
        let mut sql = String::from("SELECT hub.hub_id FROM hub");
        let mut conds = Vec::new();
        for i in 0..11 {
            sql.push_str(&format!(", dim{i}"));
            conds.push(format!("hub.d{i}_ref = dim{i}.d{i}_id"));
        }
        sql.push_str(" WHERE ");
        sql.push_str(&conds.join(" AND "));
        let plan = bind_select(&parse_select(&sql).unwrap(), &cat).unwrap();
        let optimized = optimize(plan, &cat, OptimizeOptions::default());
        assert_eq!(scan_order(&optimized).len(), 12);
    }

    #[test]
    fn bushy_enumeration_produces_bushy_tree_when_profitable() {
        // Two star sub-queries joined by a narrow bridge: (a ⋈ b) ⋈ (c ⋈ d)
        // is cheaper bushy than any left-deep order.
        let mut relations = HashMap::new();
        let mut rows = HashMap::new();
        let mut distinct = HashMap::new();
        for (name, key_a, key_b, count) in [
            ("ta", "x1", "y1", 1000.0),
            ("tb", "x2", "y1", 1000.0),
            ("tc", "x3", "y2", 1000.0),
            ("td", "x4", "y2", 1000.0),
        ] {
            relations.insert(
                name.to_string(),
                ResolvedRelation::Base {
                    fields: vec![
                        (key_a.to_string(), DataType::Int),
                        (key_b.to_string(), DataType::Int),
                    ],
                },
            );
            rows.insert(name.to_string(), count);
            // The bridge columns (x2, x3) are low-cardinality, so the
            // bridge join expands 100x: any left-deep order pays that
            // expansion twice, the bushy split only once.
            let bridge = matches!(key_a, "x2" | "x3");
            distinct.insert(
                (name.to_string(), key_a.to_string()),
                if bridge { 10.0 } else { 1000.0 },
            );
            distinct.insert((name.to_string(), key_b.to_string()), 1000.0);
        }
        let cat = TestCatalog {
            relations,
            rows,
            distinct,
        };
        let sql = "SELECT ta.x1 FROM ta, tb, tc, td \
                   WHERE ta.y1 = tb.y1 AND tc.y2 = td.y2 AND tb.x2 = tc.x3";
        let plan = bind_select(&parse_select(sql).unwrap(), &cat).unwrap();
        let bushy = optimize(
            plan.clone(),
            &cat,
            OptimizeOptions {
                join_shape: JoinShape::Bushy,
                ..Default::default()
            },
        );
        // Schema is preserved.
        let leftdeep = optimize(plan, &cat, OptimizeOptions::default());
        assert_eq!(bushy.schema(), leftdeep.schema());
        // The bushy tree has at least one join whose right child is a join.
        fn has_bushy_join(p: &LogicalPlan) -> bool {
            if let LogicalPlan::Join { right, .. } = p {
                fn contains_join(p: &LogicalPlan) -> bool {
                    matches!(p, LogicalPlan::Join { .. })
                        || p.children().iter().any(|c| contains_join(c))
                }
                if contains_join(right) {
                    return true;
                }
            }
            p.children().iter().any(|c| has_bushy_join(c))
        }
        assert!(has_bushy_join(&bushy), "{}", bushy.tree_string());
        assert!(!has_bushy_join(&leftdeep), "{}", leftdeep.tree_string());
    }

    #[test]
    fn bushy_keeps_all_predicates() {
        let cat = catalog();
        let sql = "SELECT c_name FROM customer, orders, lineitem, nation \
             WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey \
               AND c_nationkey = n_nationkey AND (c_mktsegment = 'A' OR n_name = 'B')";
        let plan = bind_select(&parse_select(sql).unwrap(), &cat).unwrap();
        let bushy = optimize(
            plan,
            &cat,
            OptimizeOptions {
                join_shape: JoinShape::Bushy,
                ..Default::default()
            },
        );
        // All three equi edges appear somewhere, plus the OR residual.
        let mut equi = 0;
        let mut residuals = 0;
        fn walk(p: &LogicalPlan, equi: &mut usize, residuals: &mut usize) {
            if let LogicalPlan::Join { on, residual, .. } = p {
                *equi += on.len();
                *residuals += residual.is_some() as usize;
            }
            for c in p.children() {
                walk(c, equi, residuals);
            }
        }
        walk(&bushy, &mut equi, &mut residuals);
        assert_eq!(equi, 3, "{}", bushy.tree_string());
        assert_eq!(residuals, 1, "{}", bushy.tree_string());
    }

    #[test]
    fn prune_keeps_count_star_scans_nonempty() {
        let plan = opt("SELECT count(*) FROM customer");
        fn min_scan_width(p: &LogicalPlan) -> usize {
            if let LogicalPlan::Scan { fields, .. } = p {
                return fields.len();
            }
            p.children()
                .iter()
                .map(|c| min_scan_width(c))
                .min()
                .unwrap_or(usize::MAX)
        }
        assert!(min_scan_width(&plan) >= 1);
    }

    #[test]
    fn optimize_with_no_stats_is_safe() {
        let cat = catalog();
        let plan = bind_select(
            &parse_select("SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey")
                .unwrap(),
            &cat,
        )
        .unwrap();
        let optimized = optimize(plan, &NoStats, OptimizeOptions::default());
        assert_eq!(scan_order(&optimized).len(), 2);
        // Still resolvable end-to-end.
        let _ = crate::algebra::plan_to_select(&optimized).unwrap();
        let _ = Value::Int(0); // silence unused import lint paths
    }
}
