//! Binder: resolves a parsed [`SelectStmt`] against a schema provider into
//! a canonical [`LogicalPlan`].
//!
//! The same binder serves two masters:
//! - each embedded engine binds the (task) queries it receives against its
//!   *local* catalog (base tables, views, foreign tables);
//! - the XDB middleware binds user queries against the *global* schema (the
//!   union of local schemas, Section III).
//!
//! The binder's output is canonical: FROM items become a left-deep chain of
//! condition-less joins and every predicate (ON + WHERE) lands in a single
//! `Filter` on top. Join-graph normalization and ordering happen later in
//! [`crate::optimize`].

use crate::algebra::{AggCall, AggFunc, LogicalPlan, PlanSchema, SchemaError};
use crate::ast::{Expr, SelectItem, SelectStmt, TableRef};
use crate::value::{DataType, Value};
use std::fmt;

/// What a relation name resolves to in a catalog.
#[derive(Debug, Clone)]
pub enum ResolvedRelation {
    /// A base table or foreign table with a fixed schema.
    Base { fields: Vec<(String, DataType)> },
    /// A view; binding expands its definition in place.
    View { query: Box<SelectStmt> },
}

/// Source of relation schemas for binding.
pub trait SchemaProvider {
    fn resolve_relation(&self, name: &str) -> Option<ResolvedRelation>;
}

/// Binding error.
#[derive(Debug, Clone, PartialEq)]
pub struct BindError {
    pub message: String,
}

impl BindError {
    fn new(message: impl Into<String>) -> BindError {
        BindError {
            message: message.into(),
        }
    }
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bind error: {}", self.message)
    }
}

impl std::error::Error for BindError {}

impl From<SchemaError> for BindError {
    fn from(e: SchemaError) -> BindError {
        BindError::new(e.to_string())
    }
}

type Result<T> = std::result::Result<T, BindError>;

/// Bind a SELECT statement to a logical plan.
pub fn bind_select(stmt: &SelectStmt, provider: &dyn SchemaProvider) -> Result<LogicalPlan> {
    Binder { provider }.select(stmt)
}

struct Binder<'a> {
    provider: &'a dyn SchemaProvider,
}

impl<'a> Binder<'a> {
    fn select(&self, stmt: &SelectStmt) -> Result<LogicalPlan> {
        // 1. FROM: cross-product chain; ON conditions join the WHERE pool.
        let mut predicates: Vec<Expr> = Vec::new();
        let mut plan: Option<LogicalPlan> = None;
        for item in &stmt.from {
            let bound = self.table_ref(item, &mut predicates)?;
            plan = Some(match plan {
                Some(acc) => acc.join(bound, vec![]),
                None => bound,
            });
        }
        let mut plan = plan.unwrap_or(LogicalPlan::OneRow);
        if let Some(w) = &stmt.selection {
            predicates.extend(w.clone().into_conjuncts());
        }
        // Partition predicates: subquery predicates (EXISTS / IN subquery)
        // become semi/anti joins; everything else is a scalar filter.
        let mut scalar: Vec<Expr> = Vec::new();
        let mut subqueries: Vec<Expr> = Vec::new();
        for p in predicates {
            match p {
                Expr::Exists { .. } | Expr::InSubquery { .. } => subqueries.push(p),
                other => {
                    if contains_subquery(&other) {
                        return Err(BindError::new(
                            "subquery predicates are only supported as top-level \
                             WHERE conjuncts",
                        ));
                    }
                    scalar.push(other);
                }
            }
        }
        if let Some(pred) = Expr::conjoin(scalar) {
            validate_expr(&pred, &plan.schema())?;
            plan = plan.filter(pred);
        }
        for sq in subqueries {
            plan = self.bind_subquery_predicate(plan, sq)?;
        }

        // 2. Projection list with output names.
        let input_schema = plan.schema();
        let mut proj: Vec<(Expr, String)> = Vec::new();
        for (i, item) in stmt.projection.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    for f in &input_schema.fields {
                        proj.push((
                            Expr::Column {
                                qualifier: f.qualifier.clone(),
                                name: f.name.clone(),
                            },
                            f.name.clone(),
                        ));
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let mut any = false;
                    for f in &input_schema.fields {
                        if f.qualifier
                            .as_deref()
                            .is_some_and(|fq| fq.eq_ignore_ascii_case(q))
                        {
                            proj.push((
                                Expr::Column {
                                    qualifier: f.qualifier.clone(),
                                    name: f.name.clone(),
                                },
                                f.name.clone(),
                            ));
                            any = true;
                        }
                    }
                    if !any {
                        return Err(BindError::new(format!("unknown relation in {q}.*")));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let name = output_name(expr, alias.as_deref(), i);
                    proj.push((expr.clone(), name));
                }
            }
        }

        let has_agg = !stmt.group_by.is_empty()
            || proj.iter().any(|(e, _)| e.contains_aggregate())
            || stmt.having.as_ref().is_some_and(|h| h.contains_aggregate());

        if has_agg {
            plan = self.bind_aggregate(plan, &input_schema, proj, stmt)?;
        } else {
            if stmt.having.is_some() {
                return Err(BindError::new("HAVING requires GROUP BY or aggregates"));
            }
            for (e, _) in &proj {
                validate_expr(e, &input_schema)?;
            }
            // ORDER BY binds against the projection output, falling back to
            // pre-projection columns (SQL allows ordering by hidden columns).
            let projected = plan.clone().project(proj.clone());
            let out_schema = projected.schema();
            let mut out_keys: Vec<(Expr, bool)> = Vec::new();
            let mut pre_keys: Vec<(Expr, bool)> = Vec::new();
            for ob in &stmt.order_by {
                let key = self.resolve_order_key(&ob.expr, &proj)?;
                if validate_expr(&key, &out_schema).is_ok() {
                    out_keys.push((key, ob.desc));
                } else if validate_expr(&ob.expr, &input_schema).is_ok() {
                    pre_keys.push((ob.expr.clone(), ob.desc));
                } else {
                    validate_expr(&key, &out_schema)?; // surfaces the error
                }
            }
            if !pre_keys.is_empty() && !out_keys.is_empty() {
                return Err(BindError::new(
                    "ORDER BY mixes projected and unprojected columns",
                ));
            }
            plan = if !pre_keys.is_empty() {
                LogicalPlan::Sort {
                    input: Box::new(plan),
                    keys: pre_keys,
                }
                .project(proj)
            } else if !out_keys.is_empty() {
                LogicalPlan::Sort {
                    input: Box::new(projected),
                    keys: out_keys,
                }
            } else {
                projected
            };
        }

        if stmt.distinct {
            plan = LogicalPlan::Distinct {
                input: Box::new(plan),
            };
        }
        if let Some(n) = stmt.limit {
            plan = LogicalPlan::Limit {
                input: Box::new(plan),
                fetch: n,
            };
        }
        Ok(plan)
    }

    /// Turn an `EXISTS` / `IN (subquery)` predicate into a semi/anti join
    /// over `outer`.
    ///
    /// Supported correlation: top-level equality conjuncts in the inner
    /// WHERE clause with one side resolving in the inner scope and the
    /// other in the outer scope (the classic decorrelatable form, e.g.
    /// TPC-H Q4's `l_orderkey = o_orderkey`). Correlation is not supported
    /// through inner aggregation.
    fn bind_subquery_predicate(&self, outer: LogicalPlan, pred: Expr) -> Result<LogicalPlan> {
        let outer_schema = outer.schema();
        let (query, negated, in_expr) = match pred {
            Expr::Exists { query, negated } => (query, negated, None),
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => (query, negated, Some(*expr)),
            _ => unreachable!("caller filters for subquery predicates"),
        };

        // Split correlated equality conjuncts out of the inner WHERE.
        let inner_from_schema = self.from_schema(&query)?;
        let mut inner_preds: Vec<Expr> = Vec::new();
        let mut correlations: Vec<(Expr, Expr)> = Vec::new(); // (outer, inner)
        for conjunct in query
            .selection
            .clone()
            .map(Expr::into_conjuncts)
            .unwrap_or_default()
        {
            if validate_expr(&conjunct, &inner_from_schema).is_ok() {
                inner_preds.push(conjunct);
                continue;
            }
            if let Expr::Binary {
                op: crate::ast::BinaryOp::Eq,
                left,
                right,
            } = &conjunct
            {
                let l_inner = validate_expr(left, &inner_from_schema).is_ok();
                let r_inner = validate_expr(right, &inner_from_schema).is_ok();
                let l_outer = validate_expr(left, &outer_schema).is_ok();
                let r_outer = validate_expr(right, &outer_schema).is_ok();
                if l_inner && r_outer {
                    correlations.push(((**right).clone(), (**left).clone()));
                    continue;
                }
                if r_inner && l_outer {
                    correlations.push(((**left).clone(), (**right).clone()));
                    continue;
                }
            }
            return Err(BindError::new(format!(
                "unsupported correlated subquery predicate: only top-level \
                 equality correlations are decorrelated ({conjunct:?})"
            )));
        }
        if !correlations.is_empty()
            && (!query.group_by.is_empty()
                || query.projection.iter().any(
                    |i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()),
                ))
        {
            return Err(BindError::new(
                "correlation through an aggregating subquery is not supported",
            ));
        }

        // Bind the decorrelated inner query. Correlated inner expressions
        // that do not already survive to the inner output (e.g. in
        // `EXISTS (SELECT 1 ...)`) are appended to the projection under
        // reserved aliases; ones that do (e.g. `SELECT *`) are referenced
        // directly — appending unconditionally would collide when
        // delegated SQL is re-bound by an engine.
        let mut decorrelated = (*query).clone();
        decorrelated.selection = Expr::conjoin(inner_preds);
        let probe_plan = self.select(&decorrelated)?;
        let probe_schema = probe_plan.schema();
        let mut corr_refs: Vec<Expr> = Vec::with_capacity(correlations.len());
        let mut appended = false;
        for (i, (_, inner_e)) in correlations.iter().enumerate() {
            if validate_expr(inner_e, &probe_schema).is_ok() {
                corr_refs.push(inner_e.clone());
            } else {
                // Choose an alias that cannot collide with existing output
                // columns (delegated SQL re-binds, so `__corr_*` names may
                // already be present via `SELECT *`).
                let mut alias = format!("__corr_{i}");
                let mut k = 0;
                while probe_schema
                    .fields
                    .iter()
                    .any(|f| f.name.eq_ignore_ascii_case(&alias))
                {
                    k += 1;
                    alias = format!("__corr_{i}_{k}");
                }
                decorrelated.projection.push(SelectItem::Expr {
                    expr: inner_e.clone(),
                    alias: Some(alias.clone()),
                });
                corr_refs.push(Expr::col(alias));
                appended = true;
            }
        }
        let inner_plan = if appended {
            self.select(&decorrelated)?
        } else {
            probe_plan
        };
        let inner_schema = inner_plan.schema();

        // Assemble the equality pairs.
        let mut on: Vec<(Expr, Expr)> = Vec::new();
        if let Some(e) = in_expr {
            validate_expr(&e, &outer_schema)?;
            // The visible output is whatever precedes the appended
            // `__corr_*` columns.
            let visible = inner_schema
                .fields
                .iter()
                .filter(|f| !f.name.starts_with("__corr_"))
                .count();
            if visible != 1 {
                return Err(BindError::new(format!(
                    "IN subquery must produce exactly one column, got {visible}"
                )));
            }
            let f = &inner_schema.fields[0];
            on.push((
                e,
                Expr::Column {
                    qualifier: f.qualifier.clone(),
                    name: f.name.clone(),
                },
            ));
        }
        for ((outer_e, _), corr_ref) in correlations.into_iter().zip(corr_refs) {
            validate_expr(&outer_e, &outer_schema)?;
            validate_expr(&corr_ref, &inner_schema).map_err(|e| BindError::new(e.to_string()))?;
            on.push((outer_e, corr_ref));
        }
        Ok(LogicalPlan::SemiJoin {
            left: Box::new(outer),
            right: Box::new(inner_plan),
            on,
            residual: None,
            negated,
        })
    }

    /// Schema of a statement's FROM clause only (for partitioning inner
    /// predicates before decorrelation).
    #[allow(clippy::wrong_self_convention)] // "schema of the FROM clause"
    fn from_schema(&self, stmt: &SelectStmt) -> Result<PlanSchema> {
        let mut predicates = Vec::new();
        let mut plan: Option<LogicalPlan> = None;
        for item in &stmt.from {
            let bound = self.table_ref(item, &mut predicates)?;
            plan = Some(match plan {
                Some(acc) => acc.join(bound, vec![]),
                None => bound,
            });
        }
        Ok(plan.map(|p| p.schema()).unwrap_or_default())
    }

    fn table_ref(&self, t: &TableRef, predicates: &mut Vec<Expr>) -> Result<LogicalPlan> {
        match t {
            TableRef::Table { name, alias } => {
                let resolved = self
                    .provider
                    .resolve_relation(name)
                    .ok_or_else(|| BindError::new(format!("unknown relation {name:?}")))?;
                let scope = alias.clone().unwrap_or_else(|| name.clone());
                match resolved {
                    ResolvedRelation::Base { fields } => Ok(LogicalPlan::Scan {
                        relation: name.clone(),
                        alias: scope,
                        fields,
                    }),
                    ResolvedRelation::View { query } => {
                        let bound = self.select(&query)?;
                        Ok(LogicalPlan::SubqueryAlias {
                            input: Box::new(bound),
                            alias: scope,
                        })
                    }
                }
            }
            TableRef::Derived { query, alias } => {
                let bound = self.select(query)?;
                Ok(LogicalPlan::SubqueryAlias {
                    input: Box::new(bound),
                    alias: alias.clone(),
                })
            }
            TableRef::Join { left, right, on } => {
                let l = self.table_ref(left, predicates)?;
                let r = self.table_ref(right, predicates)?;
                predicates.push((**on).clone());
                Ok(l.join(r, vec![]))
            }
        }
    }

    /// Build Aggregate [+ Filter(HAVING)] + Project [+ Sort] for a grouped
    /// query block.
    fn bind_aggregate(
        &self,
        input: LogicalPlan,
        input_schema: &PlanSchema,
        proj: Vec<(Expr, String)>,
        stmt: &SelectStmt,
    ) -> Result<LogicalPlan> {
        // Resolve grouping items: ordinals and projection aliases map to
        // the projection expressions; anything else is used verbatim.
        let mut group_by: Vec<(Expr, String)> = Vec::new();
        for (gi, g) in stmt.group_by.iter().enumerate() {
            let (expr, name) = match g {
                Expr::Literal(Value::Int(n)) => {
                    let idx = (*n as usize)
                        .checked_sub(1)
                        .filter(|i| *i < proj.len())
                        .ok_or_else(|| {
                            BindError::new(format!("GROUP BY ordinal {n} out of range"))
                        })?;
                    proj[idx].clone()
                }
                Expr::Column {
                    qualifier: None,
                    name,
                } => {
                    // Alias of a projection item wins over input columns,
                    // unless the projection item is itself that column.
                    if let Some((e, n)) = proj.iter().find(|(_, n)| n.eq_ignore_ascii_case(name)) {
                        (e.clone(), n.clone())
                    } else {
                        validate_expr(g, input_schema)?;
                        (g.clone(), name.clone())
                    }
                }
                other => {
                    validate_expr(other, input_schema)?;
                    // A grouping expression that structurally matches a
                    // projection item adopts that item's output name, so
                    // later references (ORDER BY, outer queries) resolve.
                    if let Some((e, n)) = proj.iter().find(|(pe, _)| pe == other) {
                        (e.clone(), n.clone())
                    } else {
                        let name = match other {
                            Expr::Column { name, .. } => name.clone(),
                            _ => format!("group_{gi}"),
                        };
                        (other.clone(), name)
                    }
                }
            };
            if expr.contains_aggregate() {
                return Err(BindError::new("cannot GROUP BY an aggregate expression"));
            }
            validate_expr(&expr, input_schema)?;
            // Dedup on structural equality.
            if !group_by.iter().any(|(e, _)| e == &expr) {
                group_by.push((expr, name));
            }
        }

        // Collect aggregate calls from projection, HAVING and ORDER BY.
        let mut aggregates: Vec<(AggCall, String)> = Vec::new();
        let mut collect = |e: &Expr, preferred: Option<&str>| -> Result<()> {
            let calls = extract_agg_calls(e)?;
            for c in calls {
                if !aggregates.iter().any(|(a, _)| a == &c) {
                    let name = match preferred {
                        // A projection item that *is* a single aggregate
                        // keeps its output name.
                        Some(n) if matches!(agg_of(e), Some(ref only) if *only == c) => {
                            n.to_string()
                        }
                        _ => format!("agg_{}", aggregates.len()),
                    };
                    aggregates.push((c, name));
                }
            }
            Ok(())
        };
        for (e, name) in &proj {
            collect(e, Some(name))?;
        }
        if let Some(h) = &stmt.having {
            collect(h, None)?;
        }
        for ob in &stmt.order_by {
            let key = self.resolve_order_key(&ob.expr, &proj)?;
            collect(&key, None)?;
        }
        for (call, _) in &aggregates {
            if let Some(arg) = &call.arg {
                validate_expr(arg, input_schema)?;
            }
        }

        let agg_plan = LogicalPlan::Aggregate {
            input: Box::new(input),
            group_by: group_by.clone(),
            aggregates: aggregates.clone(),
        };
        let agg_schema = agg_plan.schema();

        // Rewrite an expression over the aggregate output: aggregate calls
        // and grouping expressions become column references.
        let rewrite = |e: &Expr| -> Result<Expr> {
            let rewritten = rewrite_over_agg(e, &group_by, &aggregates);
            validate_expr(&rewritten, &agg_schema).map_err(|err| {
                BindError::new(format!(
                    "{err} — expression must be an aggregate or appear in GROUP BY"
                ))
            })?;
            Ok(rewritten)
        };

        let mut plan = agg_plan;
        if let Some(h) = &stmt.having {
            plan = plan.filter(rewrite(h)?);
        }
        let rewritten_proj: Vec<(Expr, String)> = proj
            .iter()
            .map(|(e, n)| Ok((rewrite(e)?, n.clone())))
            .collect::<Result<_>>()?;
        plan = plan.project(rewritten_proj.clone());
        if !stmt.order_by.is_empty() {
            let out_schema = plan.schema();
            let mut keys = Vec::new();
            for ob in &stmt.order_by {
                let key = self.resolve_order_key(&ob.expr, &rewritten_proj)?;
                // Keys containing aggregate calls are always rewritten
                // onto the aggregate's output columns (column validation
                // alone cannot see a bare `count(*)`); other keys try the
                // projected output first and fall back to the rewrite
                // (which maps grouping expressions to their outputs).
                let key = if key.contains_aggregate() || validate_expr(&key, &out_schema).is_err() {
                    rewrite(&key)?
                } else {
                    key
                };
                validate_expr(&key, &out_schema).map_err(|e| BindError::new(e.to_string()))?;
                keys.push((key, ob.desc));
            }
            plan = LogicalPlan::Sort {
                input: Box::new(plan),
                keys,
            };
        }
        Ok(plan)
    }

    /// ORDER BY keys may be ordinals or projection aliases.
    fn resolve_order_key(&self, e: &Expr, proj: &[(Expr, String)]) -> Result<Expr> {
        match e {
            Expr::Literal(Value::Int(n)) => {
                let idx = (*n as usize)
                    .checked_sub(1)
                    .filter(|i| *i < proj.len())
                    .ok_or_else(|| BindError::new(format!("ORDER BY ordinal {n} out of range")))?;
                Ok(Expr::col(proj[idx].1.clone()))
            }
            Expr::Column {
                qualifier: None,
                name,
            } => {
                if proj.iter().any(|(_, n)| n.eq_ignore_ascii_case(name)) {
                    Ok(Expr::col(name.clone()))
                } else {
                    Ok(e.clone())
                }
            }
            other => Ok(other.clone()),
        }
    }
}

/// Does the expression contain a subquery predicate anywhere?
fn contains_subquery(e: &Expr) -> bool {
    let mut found = false;
    e.walk(&mut |x| {
        if matches!(x, Expr::Exists { .. } | Expr::InSubquery { .. }) {
            found = true;
        }
    });
    found
}

/// Derive the output column name for an unaliased projection item.
fn output_name(e: &Expr, alias: Option<&str>, index: usize) -> String {
    if let Some(a) = alias {
        return a.to_string();
    }
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function { name, .. } => name.clone(),
        Expr::CountStar => "count".to_string(),
        Expr::Extract { field, .. } => format!("{field:?}").to_lowercase(),
        _ => format!("col_{index}"),
    }
}

/// Every column reference in `e` must resolve against `schema`.
fn validate_expr(e: &Expr, schema: &PlanSchema) -> std::result::Result<(), SchemaError> {
    let mut err: Option<SchemaError> = None;
    e.walk(&mut |x| {
        if err.is_some() {
            return;
        }
        if let Expr::Column { qualifier, name } = x {
            if let Err(e2) = schema.resolve(qualifier.as_deref(), name) {
                err = Some(e2);
            }
        }
    });
    match err {
        Some(e2) => Err(e2),
        None => Ok(()),
    }
}

/// If `e` is exactly one aggregate call, return it.
fn agg_of(e: &Expr) -> Option<AggCall> {
    match e {
        Expr::CountStar => Some(AggCall {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        }),
        Expr::Function {
            name,
            args,
            distinct,
        } => {
            let func = AggFunc::parse(name)?;
            Some(AggCall {
                func,
                arg: args.first().cloned(),
                distinct: *distinct,
            })
        }
        _ => None,
    }
}

/// Collect all aggregate calls appearing anywhere in `e`. Errors on nested
/// aggregates.
fn extract_agg_calls(e: &Expr) -> Result<Vec<AggCall>> {
    let mut out: Vec<AggCall> = Vec::new();
    let mut nested = false;
    e.walk(&mut |x| {
        if let Some(call) = agg_of(x) {
            if let Some(arg) = &call.arg {
                if arg.contains_aggregate() {
                    nested = true;
                }
            }
            if !out.contains(&call) {
                out.push(call);
            }
        }
    });
    if nested {
        return Err(BindError::new("nested aggregate calls are not allowed"));
    }
    Ok(out)
}

/// Replace aggregate calls and grouping expressions inside `e` with column
/// references into the aggregate's output schema.
fn rewrite_over_agg(
    e: &Expr,
    group_by: &[(Expr, String)],
    aggregates: &[(AggCall, String)],
) -> Expr {
    // Grouping expressions first (they may syntactically contain what looks
    // like other columns).
    if let Some((_, name)) = group_by.iter().find(|(g, _)| g == e) {
        return Expr::col(name.clone());
    }
    if let Some(call) = agg_of(e) {
        if let Some((_, name)) = aggregates.iter().find(|(a, _)| *a == call) {
            return Expr::col(name.clone());
        }
    }
    // Recurse manually to apply top-down matching (transform() is
    // bottom-up, which would rewrite inside aggregate args first).
    match e {
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(rewrite_over_agg(left, group_by, aggregates)),
            right: Box::new(rewrite_over_agg(right, group_by, aggregates)),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(rewrite_over_agg(expr, group_by, aggregates)),
        },
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => Expr::Case {
            operand: operand
                .as_ref()
                .map(|o| Box::new(rewrite_over_agg(o, group_by, aggregates))),
            branches: branches
                .iter()
                .map(|(w, t)| {
                    (
                        rewrite_over_agg(w, group_by, aggregates),
                        rewrite_over_agg(t, group_by, aggregates),
                    )
                })
                .collect(),
            else_expr: else_expr
                .as_ref()
                .map(|x| Box::new(rewrite_over_agg(x, group_by, aggregates))),
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(rewrite_over_agg(expr, group_by, aggregates)),
            low: Box::new(rewrite_over_agg(low, group_by, aggregates)),
            high: Box::new(rewrite_over_agg(high, group_by, aggregates)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(rewrite_over_agg(expr, group_by, aggregates)),
            list: list
                .iter()
                .map(|x| rewrite_over_agg(x, group_by, aggregates))
                .collect(),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(rewrite_over_agg(expr, group_by, aggregates)),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(rewrite_over_agg(expr, group_by, aggregates)),
            pattern: pattern.clone(),
            negated: *negated,
        },
        Expr::Extract { field, expr } => Expr::Extract {
            field: *field,
            expr: Box::new(rewrite_over_agg(expr, group_by, aggregates)),
        },
        Expr::Cast { expr, data_type } => Expr::Cast {
            expr: Box::new(rewrite_over_agg(expr, group_by, aggregates)),
            data_type: *data_type,
        },
        leaf => leaf.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;
    use std::collections::HashMap;

    struct MapProvider {
        relations: HashMap<String, ResolvedRelation>,
    }

    impl SchemaProvider for MapProvider {
        fn resolve_relation(&self, name: &str) -> Option<ResolvedRelation> {
            self.relations.get(&name.to_ascii_lowercase()).cloned()
        }
    }

    fn provider() -> MapProvider {
        let mut relations = HashMap::new();
        relations.insert(
            "citizen".to_string(),
            ResolvedRelation::Base {
                fields: vec![
                    ("id".to_string(), DataType::Int),
                    ("name".to_string(), DataType::Str),
                    ("age".to_string(), DataType::Int),
                    ("address".to_string(), DataType::Str),
                ],
            },
        );
        relations.insert(
            "vaccination".to_string(),
            ResolvedRelation::Base {
                fields: vec![
                    ("c_id".to_string(), DataType::Int),
                    ("v_id".to_string(), DataType::Int),
                    ("vdate".to_string(), DataType::Date),
                ],
            },
        );
        relations.insert(
            "adults".to_string(),
            ResolvedRelation::View {
                query: Box::new(
                    parse_select("SELECT id, age FROM citizen WHERE age >= 18").unwrap(),
                ),
            },
        );
        MapProvider { relations }
    }

    fn bind(sql: &str) -> LogicalPlan {
        bind_select(&parse_select(sql).unwrap(), &provider()).unwrap()
    }

    fn bind_err(sql: &str) -> BindError {
        bind_select(&parse_select(sql).unwrap(), &provider()).unwrap_err()
    }

    #[test]
    fn simple_projection() {
        let plan = bind("SELECT name, age FROM citizen");
        let schema = plan.schema();
        assert_eq!(schema.fields[0].name, "name");
        assert_eq!(schema.fields[1].data_type, DataType::Int);
    }

    #[test]
    fn wildcard_expansion() {
        let plan = bind("SELECT * FROM citizen");
        assert_eq!(plan.schema().len(), 4);
        let plan = bind("SELECT c.* FROM citizen c, vaccination v");
        assert_eq!(plan.schema().len(), 4);
    }

    #[test]
    fn unknown_relation_and_column() {
        assert!(bind_err("SELECT x FROM nope")
            .message
            .contains("unknown relation"));
        assert!(bind_err("SELECT bogus FROM citizen")
            .message
            .contains("unknown column"));
    }

    #[test]
    fn where_and_join_preds_merge() {
        let plan = bind(
            "SELECT c.name FROM citizen c JOIN vaccination v ON c.id = v.c_id WHERE c.age > 20",
        );
        // Canonical: Project(Filter(Join(...))) with both predicates in one
        // Filter.
        match &plan {
            LogicalPlan::Project { input, .. } => match &**input {
                LogicalPlan::Filter { predicate, .. } => {
                    assert_eq!(predicate.conjuncts().len(), 2);
                }
                other => panic!("expected filter, got {}", other.tree_string()),
            },
            other => panic!("expected project, got {}", other.tree_string()),
        }
    }

    #[test]
    fn view_expansion() {
        let plan = bind("SELECT a.age FROM adults a WHERE a.age < 65");
        // The view body is inlined under a SubqueryAlias.
        let tree = plan.tree_string();
        assert!(tree.contains("SubqueryAlias: a"), "{tree}");
        assert!(tree.contains("Scan: citizen"), "{tree}");
    }

    #[test]
    fn group_by_alias_and_case() {
        let plan = bind(
            "SELECT case when age between 20 and 30 then '20-30' else 'other' end as age_group, \
                    count(*) as cnt \
             FROM citizen GROUP BY age_group",
        );
        match find_agg(&plan) {
            Some((group_by, aggregates)) => {
                assert_eq!(group_by.len(), 1);
                assert_eq!(group_by[0].1, "age_group");
                assert!(matches!(group_by[0].0, Expr::Case { .. }));
                assert_eq!(aggregates.len(), 1);
                assert_eq!(aggregates[0].1, "cnt");
            }
            None => panic!("no aggregate node: {}", plan.tree_string()),
        }
    }

    #[test]
    fn group_by_ordinal() {
        let plan = bind("SELECT age, count(*) FROM citizen GROUP BY 1");
        let (group_by, _) = find_agg(&plan).unwrap();
        assert_eq!(group_by[0].1, "age");
    }

    #[test]
    fn expr_over_aggregates() {
        let plan = bind("SELECT sum(age) / count(*) AS mean FROM citizen");
        // Project(mean = agg_x / agg_y) over Aggregate.
        match &plan {
            LogicalPlan::Project { exprs, input } => {
                assert_eq!(exprs[0].1, "mean");
                assert!(matches!(**input, LogicalPlan::Aggregate { .. }));
                // The projection references aggregate outputs by name.
                let refs = exprs[0].0.referenced_columns();
                assert_eq!(refs.len(), 2);
            }
            other => panic!("unexpected plan {}", other.tree_string()),
        }
    }

    #[test]
    fn having_filters_above_aggregate() {
        let plan = bind("SELECT age, count(*) AS c FROM citizen GROUP BY age HAVING count(*) > 2");
        let tree = plan.tree_string();
        assert!(tree.contains("Filter"), "{tree}");
        // Filter sits above Aggregate.
        let filter_pos = tree.find("Filter").unwrap();
        let agg_pos = tree.find("Aggregate").unwrap();
        assert!(filter_pos < agg_pos, "{tree}");
    }

    #[test]
    fn non_grouped_column_rejected() {
        let err = bind_err("SELECT name, count(*) FROM citizen GROUP BY age");
        assert!(err.message.contains("GROUP BY"), "{}", err.message);
    }

    #[test]
    fn order_by_alias_and_ordinal() {
        let plan = bind("SELECT age AS a FROM citizen ORDER BY a DESC");
        assert!(matches!(plan, LogicalPlan::Sort { .. }));
        let plan = bind("SELECT age FROM citizen ORDER BY 1");
        assert!(matches!(plan, LogicalPlan::Sort { .. }));
    }

    #[test]
    fn order_by_unprojected_column() {
        let plan = bind("SELECT name FROM citizen ORDER BY age");
        // Sort must land below the projection.
        match &plan {
            LogicalPlan::Project { input, .. } => {
                assert!(matches!(**input, LogicalPlan::Sort { .. }))
            }
            other => panic!("unexpected plan {}", other.tree_string()),
        }
    }

    #[test]
    fn order_by_aggregate_expression() {
        let plan = bind("SELECT age, sum(id) AS s FROM citizen GROUP BY age ORDER BY sum(id) DESC");
        assert!(matches!(plan, LogicalPlan::Sort { .. }));
    }

    #[test]
    fn distinct_and_limit() {
        let plan = bind("SELECT DISTINCT age FROM citizen LIMIT 5");
        assert!(matches!(plan, LogicalPlan::Limit { .. }));
        let tree = plan.tree_string();
        assert!(tree.contains("Distinct"));
    }

    #[test]
    fn derived_table_binding() {
        let plan = bind(
            "SELECT d.a FROM (SELECT age AS a FROM citizen WHERE age > 10) AS d WHERE d.a < 60",
        );
        let tree = plan.tree_string();
        assert!(tree.contains("SubqueryAlias: d"), "{tree}");
    }

    #[test]
    fn nested_aggregate_rejected() {
        let err = bind_err("SELECT sum(count(*)) FROM citizen GROUP BY age");
        assert!(err.message.contains("nested"), "{}", err.message);
    }

    #[test]
    fn exists_becomes_semi_join() {
        let plan = bind(
            "SELECT name FROM citizen c WHERE EXISTS \
             (SELECT 1 FROM vaccination v WHERE v.c_id = c.id AND v.v_id = 1)",
        );
        let tree = plan.tree_string();
        assert!(tree.contains("SemiJoin"), "{tree}");
        // The pure-inner conjunct stays inside; the correlation became a
        // join condition.
        assert!(tree.contains("v_id = 1"), "{tree}");
    }

    #[test]
    fn not_exists_becomes_anti_join() {
        let plan = bind(
            "SELECT name FROM citizen c WHERE NOT EXISTS \
             (SELECT 1 FROM vaccination v WHERE v.c_id = c.id)",
        );
        assert!(
            plan.tree_string().contains("AntiJoin"),
            "{}",
            plan.tree_string()
        );
    }

    #[test]
    fn in_subquery_becomes_semi_join() {
        let plan = bind("SELECT name FROM citizen WHERE id IN (SELECT c_id FROM vaccination)");
        assert!(
            plan.tree_string().contains("SemiJoin"),
            "{}",
            plan.tree_string()
        );
    }

    #[test]
    fn subquery_inside_or_rejected() {
        let err = bind_err(
            "SELECT name FROM citizen c WHERE age > 80 OR EXISTS \
             (SELECT 1 FROM vaccination v WHERE v.c_id = c.id)",
        );
        assert!(err.message.contains("top-level"), "{}", err.message);
    }

    #[test]
    fn correlated_aggregate_subquery_rejected() {
        let err = bind_err(
            "SELECT name FROM citizen c WHERE EXISTS \
             (SELECT count(*) FROM vaccination v WHERE v.c_id = c.id GROUP BY v.v_id)",
        );
        assert!(err.message.contains("aggregating"), "{}", err.message);
    }

    #[test]
    fn non_equality_correlation_rejected() {
        let err = bind_err(
            "SELECT name FROM citizen c WHERE EXISTS \
             (SELECT 1 FROM vaccination v WHERE v.c_id < c.id)",
        );
        assert!(err.message.contains("correlat"), "{}", err.message);
    }

    #[test]
    fn multi_column_in_subquery_rejected() {
        let err =
            bind_err("SELECT name FROM citizen WHERE id IN (SELECT c_id, v_id FROM vaccination)");
        assert!(err.message.contains("one column"), "{}", err.message);
    }

    #[test]
    fn no_from_constant_select() {
        let plan = bind("SELECT 1 AS one");
        assert_eq!(plan.schema().fields[0].name, "one");
    }

    #[test]
    fn count_distinct() {
        let plan = bind("SELECT count(DISTINCT age) AS n FROM citizen");
        let (_, aggs) = find_agg(&plan).unwrap();
        assert!(aggs[0].0.distinct);
    }

    type AggParts = (Vec<(Expr, String)>, Vec<(AggCall, String)>);

    /// Find the first Aggregate node in a plan tree.
    fn find_agg(plan: &LogicalPlan) -> Option<AggParts> {
        if let LogicalPlan::Aggregate {
            group_by,
            aggregates,
            ..
        } = plan
        {
            return Some((group_by.clone(), aggregates.clone()));
        }
        for c in plan.children() {
            if let Some(found) = find_agg(c) {
                return Some(found);
            }
        }
        None
    }
}
