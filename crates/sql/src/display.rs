//! Rendering ASTs back to SQL text, per target dialect.
//!
//! Delegation works by *query rewriting* (Section V): the delegation engine
//! renders task expressions as DBMS-specific DDL/SELECT statements. Each
//! simulated vendor gets its own [`Dialect`] so the connectors exercise the
//! same translation layer a real deployment would need.

use crate::ast::*;
use crate::value::Value;
use std::fmt::Write;

/// Identifier-quoting and literal-syntax rules for a DBMS family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dialect {
    /// Internal canonical dialect (double-quoted identifiers when needed).
    Generic,
    /// PostgreSQL-like: `"ident"`, `DATE 'lit'`.
    PostgresLike,
    /// MariaDB/MySQL-like: `` `ident` ``, `DATE 'lit'`.
    MariaDbLike,
    /// Hive-like: `` `ident` ``, dates as `DATE 'lit'`.
    HiveLike,
}

impl Dialect {
    fn quote_chars(self) -> (char, char) {
        match self {
            Dialect::Generic | Dialect::PostgresLike => ('"', '"'),
            Dialect::MariaDbLike | Dialect::HiveLike => ('`', '`'),
        }
    }

    /// Quote an identifier if it is not a plain lowercase-safe name.
    pub fn ident(self, name: &str) -> String {
        let plain = !name.is_empty()
            && name.chars().all(|c| c == '_' || c.is_ascii_alphanumeric())
            && name
                .chars()
                .next()
                .is_some_and(|c| c == '_' || c.is_ascii_alphabetic())
            && !is_reserved(name);
        if plain {
            name.to_string()
        } else {
            let (open, close) = self.quote_chars();
            let escaped = name.replace(close, &format!("{close}{close}"));
            format!("{open}{escaped}{close}")
        }
    }
}

fn is_reserved(name: &str) -> bool {
    const RESERVED: &[&str] = &[
        "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "HAVING", "LIMIT", "AND", "OR", "NOT",
        "AS", "JOIN", "ON", "CASE", "WHEN", "THEN", "ELSE", "END", "NULL", "TRUE", "FALSE", "IN",
        "BETWEEN", "LIKE", "IS", "CREATE", "TABLE", "VIEW", "DROP", "INSERT", "VALUES", "DISTINCT",
        "UNION",
    ];
    RESERVED.contains(&name.to_ascii_uppercase().as_str())
}

/// Render a statement in the given dialect.
pub fn render_statement(stmt: &Statement, dialect: Dialect) -> String {
    let mut out = String::new();
    match stmt {
        Statement::Select(s) => render_select(s, dialect, &mut out),
        Statement::Explain(s) => {
            out.push_str("EXPLAIN ");
            render_select(s, dialect, &mut out);
        }
        Statement::CreateTable {
            name,
            columns,
            if_not_exists,
        } => {
            out.push_str("CREATE TABLE ");
            if *if_not_exists {
                out.push_str("IF NOT EXISTS ");
            }
            out.push_str(&dialect.ident(name));
            render_column_defs(columns, dialect, &mut out);
        }
        Statement::CreateView {
            name,
            query,
            or_replace,
        } => {
            out.push_str("CREATE ");
            if *or_replace {
                out.push_str("OR REPLACE ");
            }
            out.push_str("VIEW ");
            out.push_str(&dialect.ident(name));
            out.push_str(" AS ");
            render_select(query, dialect, &mut out);
        }
        Statement::CreateForeignTable {
            name,
            columns,
            server,
            remote_name,
        } => {
            out.push_str("CREATE FOREIGN TABLE ");
            out.push_str(&dialect.ident(name));
            render_column_defs(columns, dialect, &mut out);
            out.push_str(" SERVER ");
            out.push_str(&dialect.ident(server));
            if let Some(remote) = remote_name {
                let _ = write!(out, " OPTIONS (remote '{}')", remote.replace('\'', "''"));
            }
        }
        Statement::CreateTableAs { name, query } => {
            out.push_str("CREATE TABLE ");
            out.push_str(&dialect.ident(name));
            out.push_str(" AS ");
            render_select(query, dialect, &mut out);
        }
        Statement::Insert { table, rows } => {
            out.push_str("INSERT INTO ");
            out.push_str(&dialect.ident(table));
            out.push_str(" VALUES ");
            for (i, row) in rows.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push('(');
                for (j, e) in row.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    render_expr(e, dialect, &mut out);
                }
                out.push(')');
            }
        }
        Statement::Drop {
            kind,
            name,
            if_exists,
        } => {
            out.push_str("DROP ");
            out.push_str(match kind {
                ObjectKind::Table => "TABLE ",
                ObjectKind::View => "VIEW ",
                ObjectKind::ForeignTable => "FOREIGN TABLE ",
            });
            if *if_exists {
                out.push_str("IF EXISTS ");
            }
            out.push_str(&dialect.ident(name));
        }
    }
    out
}

fn render_column_defs(columns: &[ColumnDef], dialect: Dialect, out: &mut String) {
    out.push_str(" (");
    for (i, c) in columns.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&dialect.ident(&c.name));
        out.push(' ');
        let _ = write!(out, "{}", c.data_type);
    }
    out.push(')');
}

/// Render a SELECT statement.
pub fn render_select_string(s: &SelectStmt, dialect: Dialect) -> String {
    let mut out = String::new();
    render_select(s, dialect, &mut out);
    out
}

fn render_select(s: &SelectStmt, dialect: Dialect, out: &mut String) {
    out.push_str("SELECT ");
    if s.distinct {
        out.push_str("DISTINCT ");
    }
    for (i, item) in s.projection.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match item {
            SelectItem::Wildcard => out.push('*'),
            SelectItem::QualifiedWildcard(q) => {
                out.push_str(&dialect.ident(q));
                out.push_str(".*");
            }
            SelectItem::Expr { expr, alias } => {
                render_expr(expr, dialect, out);
                if let Some(a) = alias {
                    out.push_str(" AS ");
                    out.push_str(&dialect.ident(a));
                }
            }
        }
    }
    if !s.from.is_empty() {
        out.push_str(" FROM ");
        for (i, t) in s.from.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            render_table_ref(t, dialect, out);
        }
    }
    if let Some(w) = &s.selection {
        out.push_str(" WHERE ");
        render_expr(w, dialect, out);
    }
    if !s.group_by.is_empty() {
        out.push_str(" GROUP BY ");
        for (i, g) in s.group_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            render_expr(g, dialect, out);
        }
    }
    if let Some(h) = &s.having {
        out.push_str(" HAVING ");
        render_expr(h, dialect, out);
    }
    if !s.order_by.is_empty() {
        out.push_str(" ORDER BY ");
        for (i, o) in s.order_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            render_expr(&o.expr, dialect, out);
            if o.desc {
                out.push_str(" DESC");
            }
        }
    }
    if let Some(n) = s.limit {
        let _ = write!(out, " LIMIT {n}");
    }
}

fn render_table_ref(t: &TableRef, dialect: Dialect, out: &mut String) {
    match t {
        TableRef::Table { name, alias } => {
            out.push_str(&dialect.ident(name));
            if let Some(a) = alias {
                out.push_str(" AS ");
                out.push_str(&dialect.ident(a));
            }
        }
        TableRef::Derived { query, alias } => {
            out.push('(');
            render_select(query, dialect, out);
            out.push_str(") AS ");
            out.push_str(&dialect.ident(alias));
        }
        TableRef::Join { left, right, on } => {
            render_table_ref(left, dialect, out);
            out.push_str(" JOIN ");
            // Parenthesize a right-nested join to preserve shape.
            if matches!(**right, TableRef::Join { .. }) {
                out.push('(');
                render_table_ref(right, dialect, out);
                out.push(')');
            } else {
                render_table_ref(right, dialect, out);
            }
            out.push_str(" ON ");
            render_expr(on, dialect, out);
        }
    }
}

/// Binding strength for parenthesization. Higher binds tighter.
fn precedence(e: &Expr) -> u8 {
    match e {
        Expr::Binary { op, .. } => match op {
            BinaryOp::Or => 1,
            BinaryOp::And => 2,
            op if op.is_comparison() => 4,
            BinaryOp::Plus | BinaryOp::Minus | BinaryOp::Concat => 5,
            BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => 6,
            _ => 4,
        },
        Expr::Unary {
            op: UnaryOp::Not, ..
        } => 3,
        Expr::Between { .. } | Expr::Like { .. } | Expr::InList { .. } | Expr::IsNull { .. } => 4,
        Expr::Unary {
            op: UnaryOp::Neg, ..
        } => 7,
        _ => 10,
    }
}

/// Render an expression in the given dialect.
pub fn render_expr_string(e: &Expr, dialect: Dialect) -> String {
    let mut out = String::new();
    render_expr(e, dialect, &mut out);
    out
}

fn render_child(child: &Expr, parent_prec: u8, dialect: Dialect, out: &mut String) {
    if precedence(child) < parent_prec {
        out.push('(');
        render_expr(child, dialect, out);
        out.push(')');
    } else {
        render_expr(child, dialect, out);
    }
}

fn render_expr(e: &Expr, dialect: Dialect, out: &mut String) {
    match e {
        Expr::Column { qualifier, name } => {
            if let Some(q) = qualifier {
                out.push_str(&dialect.ident(q));
                out.push('.');
            }
            out.push_str(&dialect.ident(name));
        }
        Expr::Literal(v) => render_literal(v, out),
        Expr::Interval { n, unit } => {
            let unit_s = match unit {
                IntervalUnit::Year => "YEAR",
                IntervalUnit::Month => "MONTH",
                IntervalUnit::Day => "DAY",
            };
            let _ = write!(out, "INTERVAL '{n}' {unit_s}");
        }
        Expr::Binary { op, left, right } => {
            let prec = precedence(e);
            // Comparisons are non-associative: a same-precedence left
            // child (another comparison or a postfix predicate) must keep
            // its parentheses.
            let left_prec = if op.is_comparison() { prec + 1 } else { prec };
            render_child(left, left_prec, dialect, out);
            out.push_str(match op {
                BinaryOp::Plus => " + ",
                BinaryOp::Minus => " - ",
                BinaryOp::Mul => " * ",
                BinaryOp::Div => " / ",
                BinaryOp::Mod => " % ",
                BinaryOp::Eq => " = ",
                BinaryOp::NotEq => " <> ",
                BinaryOp::Lt => " < ",
                BinaryOp::LtEq => " <= ",
                BinaryOp::Gt => " > ",
                BinaryOp::GtEq => " >= ",
                BinaryOp::And => " AND ",
                BinaryOp::Or => " OR ",
                BinaryOp::Concat => " || ",
            });
            // Right side needs a strictly-higher precedence to preserve
            // left-associativity of `-`, `/` on round-trips.
            render_child(right, prec + 1, dialect, out);
        }
        Expr::Unary { op, expr } => {
            match op {
                UnaryOp::Neg => out.push('-'),
                UnaryOp::Not => out.push_str("NOT "),
            }
            render_child(expr, precedence(e) + 1, dialect, out);
        }
        Expr::Function {
            name,
            args,
            distinct,
        } => {
            out.push_str(name);
            out.push('(');
            if *distinct {
                out.push_str("DISTINCT ");
            }
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_expr(a, dialect, out);
            }
            out.push(')');
        }
        Expr::CountStar => out.push_str("count(*)"),
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            out.push_str("CASE");
            if let Some(op) = operand {
                out.push(' ');
                render_expr(op, dialect, out);
            }
            for (w, t) in branches {
                out.push_str(" WHEN ");
                render_expr(w, dialect, out);
                out.push_str(" THEN ");
                render_expr(t, dialect, out);
            }
            if let Some(el) = else_expr {
                out.push_str(" ELSE ");
                render_expr(el, dialect, out);
            }
            out.push_str(" END");
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            render_child(expr, 5, dialect, out);
            if *negated {
                out.push_str(" NOT");
            }
            out.push_str(" BETWEEN ");
            render_child(low, 5, dialect, out);
            out.push_str(" AND ");
            render_child(high, 5, dialect, out);
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            render_child(expr, 5, dialect, out);
            if *negated {
                out.push_str(" NOT");
            }
            let _ = write!(out, " LIKE '{}'", pattern.replace('\'', "''"));
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            render_child(expr, 5, dialect, out);
            if *negated {
                out.push_str(" NOT");
            }
            out.push_str(" IN (");
            for (i, item) in list.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_expr(item, dialect, out);
            }
            out.push(')');
        }
        Expr::IsNull { expr, negated } => {
            render_child(expr, 5, dialect, out);
            out.push_str(if *negated { " IS NOT NULL" } else { " IS NULL" });
        }
        Expr::Exists { query, negated } => {
            if *negated {
                out.push_str("NOT ");
            }
            out.push_str("EXISTS (");
            render_select(query, dialect, out);
            out.push(')');
        }
        Expr::InSubquery {
            expr,
            query,
            negated,
        } => {
            render_child(expr, 5, dialect, out);
            if *negated {
                out.push_str(" NOT");
            }
            out.push_str(" IN (");
            render_select(query, dialect, out);
            out.push(')');
        }
        Expr::Extract { field, expr } => {
            out.push_str("EXTRACT(");
            out.push_str(match field {
                DateField::Year => "YEAR",
                DateField::Month => "MONTH",
                DateField::Day => "DAY",
            });
            out.push_str(" FROM ");
            render_expr(expr, dialect, out);
            out.push(')');
        }
        Expr::Cast { expr, data_type } => {
            out.push_str("CAST(");
            render_expr(expr, dialect, out);
            let _ = write!(out, " AS {data_type})");
        }
    }
}

fn render_literal(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("NULL"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => {
            if f.fract() == 0.0 && f.abs() < 1e15 {
                let _ = write!(out, "{f:.1}");
            } else {
                let _ = write!(out, "{f}");
            }
        }
        Value::Str(s) => {
            let _ = write!(out, "'{}'", s.replace('\'', "''"));
        }
        Value::Date(d) => {
            let _ = write!(out, "DATE '{}'", crate::value::date::format_days(*d));
        }
        Value::Bool(b) => out.push_str(if *b { "TRUE" } else { "FALSE" }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_select, parse_statement};

    fn roundtrip_select(sql: &str) {
        let ast = parse_select(sql).unwrap();
        let rendered = render_select_string(&ast, Dialect::Generic);
        let reparsed = parse_select(&rendered)
            .unwrap_or_else(|e| panic!("re-parse of {rendered:?} failed: {e}"));
        assert_eq!(ast, reparsed, "round-trip mismatch for {rendered:?}");
    }

    fn roundtrip_expr(sql: &str) {
        let ast = parse_expr(sql).unwrap();
        let rendered = render_expr_string(&ast, Dialect::Generic);
        let reparsed = parse_expr(&rendered)
            .unwrap_or_else(|e| panic!("re-parse of {rendered:?} failed: {e}"));
        assert_eq!(ast, reparsed, "round-trip mismatch for {rendered:?}");
    }

    #[test]
    fn roundtrip_simple() {
        roundtrip_select("SELECT a, b AS bee FROM t WHERE a > 1 ORDER BY b DESC LIMIT 5");
    }

    #[test]
    fn roundtrip_exprs() {
        roundtrip_expr("a + b * c - d / e");
        roundtrip_expr("(a + b) * c");
        roundtrip_expr("a - (b - c)");
        roundtrip_expr("a / (b / c)");
        roundtrip_expr("not (a = 1 or b = 2)");
        roundtrip_expr("case when x < 1 then 'lo' else 'hi' end");
        roundtrip_expr("x between 1 and 10");
        roundtrip_expr("name like '%green%'");
        roundtrip_expr("x in (1, 2, 3)");
        roundtrip_expr("x is not null");
        roundtrip_expr("extract(year from d)");
        roundtrip_expr("cast(x as bigint)");
        roundtrip_expr("sum(l_extendedprice * (1 - l_discount))");
        roundtrip_expr("d + interval '3' month");
    }

    #[test]
    fn roundtrip_tpch_q3() {
        roundtrip_select(
            "select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue, o_orderdate, o_shippriority \
             from customer, orders, lineitem \
             where c_mktsegment = 'BUILDING' and c_custkey = o_custkey and l_orderkey = o_orderkey \
               and o_orderdate < date '1995-03-15' and l_shipdate > date '1995-03-15' \
             group by l_orderkey, o_orderdate, o_shippriority \
             order by revenue desc, o_orderdate limit 10",
        );
    }

    #[test]
    fn roundtrip_derived_and_joins() {
        roundtrip_select(
            "select x from (select a as x from t where a > 0) as d join u on d.x = u.y",
        );
    }

    #[test]
    fn roundtrip_ddl() {
        for sql in [
            "CREATE VIEW v AS SELECT a FROM t",
            "CREATE OR REPLACE VIEW v AS SELECT a FROM t",
            "CREATE TABLE t (a BIGINT, b VARCHAR, c DATE)",
            "CREATE TABLE m AS SELECT * FROM v",
            "CREATE FOREIGN TABLE f (a BIGINT) SERVER s OPTIONS (remote 'r')",
            "DROP VIEW IF EXISTS v",
            "INSERT INTO t VALUES (1, 'x', DATE '1995-01-01')",
        ] {
            let ast = parse_statement(sql).unwrap();
            let rendered = render_statement(&ast, Dialect::Generic);
            let reparsed = parse_statement(&rendered)
                .unwrap_or_else(|e| panic!("re-parse of {rendered:?} failed: {e}"));
            assert_eq!(ast, reparsed, "round-trip mismatch for {rendered:?}");
        }
    }

    #[test]
    fn dialect_quoting() {
        assert_eq!(Dialect::PostgresLike.ident("simple"), "simple");
        assert_eq!(Dialect::PostgresLike.ident("Weird Col"), "\"Weird Col\"");
        assert_eq!(Dialect::MariaDbLike.ident("Weird Col"), "`Weird Col`");
        assert_eq!(Dialect::Generic.ident("select"), "\"select\"");
        assert_eq!(Dialect::Generic.ident("1abc"), "\"1abc\"");
    }

    #[test]
    fn string_escaping() {
        let e = Expr::lit(Value::str("it's"));
        assert_eq!(render_expr_string(&e, Dialect::Generic), "'it''s'");
    }
}
