//! Logical relational algebra shared by the local engines and the XDB
//! cross-database optimizer.
//!
//! A delegation plan's task bodies are sub-trees of this algebra; the
//! delegation engine lowers them back to dialect-specific SQL via
//! [`plan_to_select`]. Operators carry *name-resolved* schemas
//! (qualifier + column name), never positional indexes, so a sub-tree can be
//! rendered as SQL for any DBMS without further context.

use crate::ast::{BinaryOp, Expr, OrderByExpr, SelectItem, SelectStmt, TableRef};
use crate::value::DataType;
use std::fmt;

/// A named, typed output column of a plan node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Table alias this column is addressable by, if any.
    pub qualifier: Option<String>,
    pub name: String,
    pub data_type: DataType,
}

impl Field {
    pub fn new(qualifier: Option<&str>, name: &str, data_type: DataType) -> Field {
        Field {
            qualifier: qualifier.map(str::to_string),
            name: name.to_string(),
            data_type,
        }
    }

    pub fn bare(name: &str, data_type: DataType) -> Field {
        Field::new(None, name, data_type)
    }
}

/// An ordered set of fields; the output schema of a plan node.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlanSchema {
    pub fields: Vec<Field>,
}

/// Schema resolution errors.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaError {
    Unknown(String),
    Ambiguous(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Unknown(c) => write!(f, "unknown column {c}"),
            SchemaError::Ambiguous(c) => write!(f, "ambiguous column {c}"),
        }
    }
}

impl std::error::Error for SchemaError {}

impl PlanSchema {
    pub fn new(fields: Vec<Field>) -> PlanSchema {
        PlanSchema { fields }
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Resolve a column reference to a field index. A qualified reference
    /// `q.name` matches only fields with that qualifier; a bare reference
    /// matches any field with that name and must be unambiguous.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize, SchemaError> {
        let mut found: Option<usize> = None;
        for (i, f) in self.fields.iter().enumerate() {
            let name_matches = f.name.eq_ignore_ascii_case(name);
            let qual_matches = match qualifier {
                Some(q) => f
                    .qualifier
                    .as_deref()
                    .is_some_and(|fq| fq.eq_ignore_ascii_case(q)),
                None => true,
            };
            if name_matches && qual_matches {
                if found.is_some() {
                    return Err(SchemaError::Ambiguous(display_col(qualifier, name)));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| SchemaError::Unknown(display_col(qualifier, name)))
    }

    /// Concatenate two schemas (join output).
    pub fn join(&self, right: &PlanSchema) -> PlanSchema {
        let mut fields = self.fields.clone();
        fields.extend(right.fields.iter().cloned());
        PlanSchema { fields }
    }
}

fn display_col(qualifier: Option<&str>, name: &str) -> String {
    match qualifier {
        Some(q) => format!("{q}.{name}"),
        None => name.to_string(),
    }
}

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Sum,
    Avg,
    Count,
    Min,
    Max,
}

impl AggFunc {
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Count => "count",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }

    pub fn parse(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "COUNT" => Some(AggFunc::Count),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

/// One aggregate call inside an [`LogicalPlan::Aggregate`].
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    pub func: AggFunc,
    /// `None` means `count(*)`.
    pub arg: Option<Expr>,
    pub distinct: bool,
}

impl AggCall {
    pub fn output_type(&self, input: &PlanSchema) -> DataType {
        match self.func {
            AggFunc::Count => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => self
                .arg
                .as_ref()
                .and_then(|a| infer_type(a, input).ok())
                .unwrap_or(DataType::Float),
        }
    }

    fn to_expr(&self) -> Expr {
        match (&self.arg, self.func) {
            (None, AggFunc::Count) => Expr::CountStar,
            (Some(arg), f) => Expr::Function {
                name: f.name().to_string(),
                args: vec![arg.clone()],
                distinct: self.distinct,
            },
            (None, f) => panic!("aggregate {f:?} requires an argument"),
        }
    }
}

/// A logical query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan of a base relation / view / foreign table `relation`, addressed
    /// in the plan by `alias`. `fields` is the scan's output schema, with
    /// every field qualified by `alias`.
    Scan {
        relation: String,
        alias: String,
        fields: Vec<(String, DataType)>,
    },
    /// The `?` dummy operator of a delegation plan: a stand-in for the
    /// output of another task (Section IV-B3). `name` is the relation the
    /// delegation engine binds it to (foreign table or materialized table).
    Placeholder {
        name: String,
        alias: String,
        fields: Vec<(String, DataType)>,
    },
    Filter {
        input: Box<LogicalPlan>,
        predicate: Expr,
    },
    Project {
        input: Box<LogicalPlan>,
        /// (expression, output name) pairs.
        exprs: Vec<(Expr, String)>,
    },
    /// Semi (`EXISTS` / `IN subquery`) or anti (`NOT EXISTS`) join: emits
    /// each left row with at least one (resp. zero) matching right row.
    /// Output schema = left schema.
    SemiJoin {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        /// Equality pairs `left_expr = right_expr` (correlation and/or
        /// IN-subquery equality).
        on: Vec<(Expr, Expr)>,
        /// Extra condition over the concatenated (left ++ right) row.
        residual: Option<Expr>,
        /// True = anti join (NOT EXISTS).
        negated: bool,
    },
    /// Inner equi-join with optional residual (non-equi) condition.
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        /// Equality pairs: `left_expr = right_expr`, sides resolved against
        /// the respective child schema.
        on: Vec<(Expr, Expr)>,
        /// Extra condition evaluated against the joined row.
        residual: Option<Expr>,
    },
    Aggregate {
        input: Box<LogicalPlan>,
        /// (grouping expression, output name) pairs.
        group_by: Vec<(Expr, String)>,
        /// (aggregate call, output name) pairs.
        aggregates: Vec<(AggCall, String)>,
    },
    Sort {
        input: Box<LogicalPlan>,
        /// (key expression over input schema, descending) pairs.
        keys: Vec<(Expr, bool)>,
    },
    Limit {
        input: Box<LogicalPlan>,
        fetch: u64,
    },
    Distinct {
        input: Box<LogicalPlan>,
    },
    /// Re-qualifies all output columns of `input` with `alias` — the scope
    /// introduced by a derived table or an expanded view.
    SubqueryAlias {
        input: Box<LogicalPlan>,
        alias: String,
    },
    /// Produces exactly one empty row; the plan for `SELECT <consts>`
    /// without a FROM clause.
    OneRow,
}

impl LogicalPlan {
    pub fn filter(self, predicate: Expr) -> LogicalPlan {
        LogicalPlan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    pub fn project(self, exprs: Vec<(Expr, String)>) -> LogicalPlan {
        LogicalPlan::Project {
            input: Box::new(self),
            exprs,
        }
    }

    pub fn join(self, right: LogicalPlan, on: Vec<(Expr, Expr)>) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            on,
            residual: None,
        }
    }

    /// Output schema of this node.
    pub fn schema(&self) -> PlanSchema {
        match self {
            LogicalPlan::Scan { alias, fields, .. }
            | LogicalPlan::Placeholder { alias, fields, .. } => PlanSchema::new(
                fields
                    .iter()
                    .map(|(n, t)| Field::new(Some(alias), n, *t))
                    .collect(),
            ),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input } => input.schema(),
            LogicalPlan::SubqueryAlias { input, alias } => PlanSchema::new(
                input
                    .schema()
                    .fields
                    .into_iter()
                    .map(|f| Field::new(Some(alias), &f.name, f.data_type))
                    .collect(),
            ),
            LogicalPlan::OneRow => PlanSchema::default(),
            LogicalPlan::Project { input, exprs } => {
                let in_schema = input.schema();
                PlanSchema::new(
                    exprs
                        .iter()
                        .map(|(e, name)| {
                            let ty = infer_type(e, &in_schema).unwrap_or(DataType::Float);
                            Field::bare(name, ty)
                        })
                        .collect(),
                )
            }
            LogicalPlan::Join { left, right, .. } => left.schema().join(&right.schema()),
            LogicalPlan::SemiJoin { left, .. } => left.schema(),
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggregates,
            } => aggregate_schema(&input.schema(), group_by, aggregates),
        }
    }

    /// Immediate children of this node.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } | LogicalPlan::Placeholder { .. } | LogicalPlan::OneRow => {
                vec![]
            }
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::SubqueryAlias { input, .. }
            | LogicalPlan::Distinct { input } => vec![input],
            LogicalPlan::Join { left, right, .. } | LogicalPlan::SemiJoin { left, right, .. } => {
                vec![left, right]
            }
        }
    }

    /// All scan/placeholder aliases in this sub-tree, in plan order.
    pub fn leaf_aliases(&self) -> Vec<&str> {
        let mut out = Vec::new();
        fn walk<'a>(p: &'a LogicalPlan, out: &mut Vec<&'a str>) {
            match p {
                LogicalPlan::Scan { alias, .. } | LogicalPlan::Placeholder { alias, .. } => {
                    out.push(alias)
                }
                other => {
                    for c in other.children() {
                        walk(c, out);
                    }
                }
            }
        }
        walk(self, &mut out);
        out
    }

    /// Count of operator nodes in this sub-tree.
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// Compact algebra notation in the style of the paper's delegation
    /// plans, e.g. `⋈(π(σ(C)), ?)` (Figure 5, Table IV).
    pub fn compact_notation(&self) -> String {
        match self {
            LogicalPlan::Scan { alias, .. } => alias.clone(),
            LogicalPlan::Placeholder { .. } => "?".to_string(),
            LogicalPlan::Filter { input, .. } => format!("σ({})", input.compact_notation()),
            LogicalPlan::Project { input, .. } => format!("π({})", input.compact_notation()),
            LogicalPlan::Join { left, right, .. } => format!(
                "⋈({},{})",
                left.compact_notation(),
                right.compact_notation()
            ),
            LogicalPlan::SemiJoin {
                left,
                right,
                negated,
                ..
            } => format!(
                "{}({},{})",
                if *negated { "▷" } else { "⋉" },
                left.compact_notation(),
                right.compact_notation()
            ),
            LogicalPlan::Aggregate { input, .. } => format!("γ({})", input.compact_notation()),
            LogicalPlan::Sort { input, .. } => format!("τ({})", input.compact_notation()),
            LogicalPlan::Limit { input, fetch } => {
                format!("λ{}({})", fetch, input.compact_notation())
            }
            LogicalPlan::Distinct { input } => format!("δ({})", input.compact_notation()),
            LogicalPlan::SubqueryAlias { input, .. } => input.compact_notation(),
            LogicalPlan::OneRow => "∅".to_string(),
        }
    }

    /// Pretty tree rendering for debugging and EXPLAIN output.
    pub fn tree_string(&self) -> String {
        let mut out = String::new();
        self.tree_fmt(&mut out, 0);
        out
    }

    fn tree_fmt(&self, out: &mut String, depth: usize) {
        use crate::display::{render_expr_string, Dialect};
        for _ in 0..depth {
            out.push_str("  ");
        }
        match self {
            LogicalPlan::Scan {
                relation, alias, ..
            } => {
                out.push_str(&format!("Scan: {relation} as {alias}\n"));
            }
            LogicalPlan::Placeholder { name, alias, .. } => {
                out.push_str(&format!("Placeholder: ?{name} as {alias}\n"));
            }
            LogicalPlan::Filter { predicate, .. } => {
                out.push_str(&format!(
                    "Filter: {}\n",
                    render_expr_string(predicate, Dialect::Generic)
                ));
            }
            LogicalPlan::Project { exprs, .. } => {
                let cols: Vec<String> = exprs
                    .iter()
                    .map(|(e, n)| format!("{} AS {n}", render_expr_string(e, Dialect::Generic)))
                    .collect();
                out.push_str(&format!("Project: {}\n", cols.join(", ")));
            }
            LogicalPlan::Join { on, residual, .. } => {
                let conds: Vec<String> = on
                    .iter()
                    .map(|(l, r)| {
                        format!(
                            "{} = {}",
                            render_expr_string(l, Dialect::Generic),
                            render_expr_string(r, Dialect::Generic)
                        )
                    })
                    .collect();
                let res = residual
                    .as_ref()
                    .map(|r| format!(" residual: {}", render_expr_string(r, Dialect::Generic)))
                    .unwrap_or_default();
                out.push_str(&format!("Join: {}{}\n", conds.join(" AND "), res));
            }
            LogicalPlan::SemiJoin {
                on,
                residual,
                negated,
                ..
            } => {
                let conds: Vec<String> = on
                    .iter()
                    .map(|(l, r)| {
                        format!(
                            "{} = {}",
                            render_expr_string(l, Dialect::Generic),
                            render_expr_string(r, Dialect::Generic)
                        )
                    })
                    .collect();
                let res = residual
                    .as_ref()
                    .map(|r| format!(" residual: {}", render_expr_string(r, Dialect::Generic)))
                    .unwrap_or_default();
                out.push_str(&format!(
                    "{}: {}{}\n",
                    if *negated { "AntiJoin" } else { "SemiJoin" },
                    conds.join(" AND "),
                    res
                ));
            }
            LogicalPlan::Aggregate {
                group_by,
                aggregates,
                ..
            } => {
                let groups: Vec<String> = group_by.iter().map(|(_, n)| n.clone()).collect();
                let aggs: Vec<String> = aggregates
                    .iter()
                    .map(|(a, n)| format!("{}(..) AS {n}", a.func.name()))
                    .collect();
                out.push_str(&format!(
                    "Aggregate: group=[{}] aggs=[{}]\n",
                    groups.join(", "),
                    aggs.join(", ")
                ));
            }
            LogicalPlan::Sort { keys, .. } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|(e, desc)| {
                        format!(
                            "{}{}",
                            render_expr_string(e, Dialect::Generic),
                            if *desc { " DESC" } else { "" }
                        )
                    })
                    .collect();
                out.push_str(&format!("Sort: {}\n", ks.join(", ")));
            }
            LogicalPlan::Limit { fetch, .. } => {
                out.push_str(&format!("Limit: {fetch}\n"));
            }
            LogicalPlan::Distinct { .. } => {
                out.push_str("Distinct\n");
            }
            LogicalPlan::SubqueryAlias { alias, .. } => {
                out.push_str(&format!("SubqueryAlias: {alias}\n"));
            }
            LogicalPlan::OneRow => {
                out.push_str("OneRow\n");
            }
        }
        for c in self.children() {
            c.tree_fmt(out, depth + 1);
        }
    }
}

/// Output schema of an aggregation, given its *input* schema. Shared by
/// [`LogicalPlan::schema`] and executors that already hold the input schema
/// (so they need not reconstruct the plan node to learn its output shape).
pub fn aggregate_schema(
    in_schema: &PlanSchema,
    group_by: &[(Expr, String)],
    aggregates: &[(AggCall, String)],
) -> PlanSchema {
    let mut fields = Vec::with_capacity(group_by.len() + aggregates.len());
    for (e, name) in group_by {
        let ty = infer_type(e, in_schema).unwrap_or(DataType::Str);
        fields.push(Field::bare(name, ty));
    }
    for (agg, name) in aggregates {
        fields.push(Field::bare(name, agg.output_type(in_schema)));
    }
    PlanSchema::new(fields)
}

/// Infer the output type of an expression against a schema.
pub fn infer_type(e: &Expr, schema: &PlanSchema) -> Result<DataType, SchemaError> {
    use crate::ast::{DateField, UnaryOp};
    Ok(match e {
        Expr::Column { qualifier, name } => {
            let idx = schema.resolve(qualifier.as_deref(), name)?;
            schema.fields[idx].data_type
        }
        Expr::Literal(v) => v.data_type().unwrap_or(DataType::Str),
        Expr::Interval { .. } => DataType::Int,
        Expr::Binary { op, left, right } => match op {
            BinaryOp::And | BinaryOp::Or => DataType::Bool,
            op if op.is_comparison() => DataType::Bool,
            BinaryOp::Concat => DataType::Str,
            BinaryOp::Div => DataType::Float,
            BinaryOp::Plus | BinaryOp::Minus | BinaryOp::Mul | BinaryOp::Mod => {
                // Interval sides do not change the other side's type.
                if matches!(**left, Expr::Interval { .. }) {
                    return infer_type(right, schema);
                }
                if matches!(**right, Expr::Interval { .. }) {
                    return infer_type(left, schema);
                }
                let lt = infer_type(left, schema)?;
                let rt = infer_type(right, schema)?;
                match (lt, rt) {
                    (DataType::Date, DataType::Date) => DataType::Int,
                    (DataType::Date, _) | (_, DataType::Date) => DataType::Date,
                    (DataType::Int, DataType::Int) => DataType::Int,
                    _ => DataType::Float,
                }
            }
            _ => DataType::Float,
        },
        Expr::Unary { op, expr } => match op {
            UnaryOp::Not => DataType::Bool,
            UnaryOp::Neg => infer_type(expr, schema)?,
        },
        Expr::Function { name, args, .. } => {
            if let Some(f) = AggFunc::parse(name) {
                match f {
                    AggFunc::Count => DataType::Int,
                    AggFunc::Avg => DataType::Float,
                    _ => args
                        .first()
                        .map(|a| infer_type(a, schema))
                        .transpose()?
                        .unwrap_or(DataType::Float),
                }
            } else {
                match name.to_ascii_lowercase().as_str() {
                    "abs" | "round" | "floor" | "ceil" => args
                        .first()
                        .map(|a| infer_type(a, schema))
                        .transpose()?
                        .unwrap_or(DataType::Float),
                    "length" => DataType::Int,
                    "substr" | "substring" | "upper" | "lower" | "concat" => DataType::Str,
                    _ => DataType::Float,
                }
            }
        }
        Expr::CountStar => DataType::Int,
        Expr::Case {
            branches,
            else_expr,
            ..
        } => {
            let mut ty = None;
            for (_, then) in branches {
                if let Ok(t) = infer_type(then, schema) {
                    if !matches!(then, Expr::Literal(crate::value::Value::Null)) {
                        ty = Some(t);
                        break;
                    }
                }
            }
            if ty.is_none() {
                if let Some(el) = else_expr {
                    ty = infer_type(el, schema).ok();
                }
            }
            ty.unwrap_or(DataType::Str)
        }
        Expr::Between { .. }
        | Expr::Like { .. }
        | Expr::InList { .. }
        | Expr::IsNull { .. }
        | Expr::Exists { .. }
        | Expr::InSubquery { .. } => DataType::Bool,
        Expr::Extract { field, .. } => match field {
            DateField::Year | DateField::Month | DateField::Day => DataType::Int,
        },
        Expr::Cast { data_type, .. } => *data_type,
    })
}

// ---------------------------------------------------------------------------
// Lowering a logical plan back to a SELECT statement (delegation rendering).
// ---------------------------------------------------------------------------

/// State of the SELECT block being assembled bottom-up.
struct SelectBuilder {
    stmt: SelectStmt,
    /// Output fields of the block and the expression each corresponds to
    /// *within the current block scope* (for substitution).
    outputs: Vec<(Field, Expr)>,
    /// Whether the block has an aggregate (GROUP BY or bare aggregates).
    grouped: bool,
    /// Counter for generated derived-table aliases.
    next_sub: usize,
}

impl SelectBuilder {
    /// Wrap the current block into a derived table so new clauses can be
    /// layered on. All outputs get explicit unique aliases; column
    /// references into the old scope are rewritten by the caller through
    /// the returned mapping.
    fn wrap(&mut self) {
        let alias = format!("xdb_sub{}", self.next_sub);
        self.next_sub += 1;
        // Give every output an explicit, unique alias.
        let mut items = Vec::with_capacity(self.outputs.len());
        let mut new_outputs = Vec::with_capacity(self.outputs.len());
        let mut used: std::collections::HashSet<String> = std::collections::HashSet::new();
        for (field, expr) in &self.outputs {
            let mut out_name = field.name.clone();
            if !used.insert(out_name.to_ascii_lowercase()) {
                out_name = match &field.qualifier {
                    Some(q) => format!("{q}_{}", field.name),
                    None => format!("{}_{}", field.name, used.len()),
                };
                let mut n = 0;
                while !used.insert(out_name.to_ascii_lowercase()) {
                    n += 1;
                    out_name = format!("{}_{}", field.name, n);
                }
            }
            items.push(SelectItem::Expr {
                expr: expr.clone(),
                alias: Some(out_name.clone()),
            });
            new_outputs.push((
                Field::new(Some(&alias), &out_name, field.data_type),
                Expr::qcol(alias.clone(), out_name.clone()),
            ));
        }
        self.stmt.projection = items;
        let inner = std::mem::take(&mut self.stmt);
        self.stmt = SelectStmt {
            projection: vec![SelectItem::Wildcard],
            from: vec![TableRef::Derived {
                query: Box::new(inner),
                alias,
            }],
            ..Default::default()
        };
        self.outputs = new_outputs;
        self.grouped = false;
    }

    /// Rewrite an expression over the node's *logical* input schema
    /// (`fields`, parallel to `self.outputs`) into the current block scope.
    fn rewrite(&self, e: &Expr, input_schema: &PlanSchema) -> Result<Expr, SchemaError> {
        let outputs = &self.outputs;
        let mut err = None;
        let rewritten = e.clone().transform(&mut |x| match &x {
            Expr::Column { qualifier, name } => {
                match input_schema.resolve(qualifier.as_deref(), name) {
                    Ok(idx) => outputs[idx].1.clone(),
                    Err(e2) => {
                        err.get_or_insert(e2);
                        x
                    }
                }
            }
            _ => x,
        });
        match err {
            Some(e2) => Err(e2),
            None => Ok(rewritten),
        }
    }

    fn has_order_or_limit(&self) -> bool {
        !self.stmt.order_by.is_empty() || self.stmt.limit.is_some()
    }
}

/// Lower a logical plan to an equivalent `SELECT` statement.
///
/// The result re-parses and re-plans to the same semantics on any engine in
/// the federation; this is the mechanism by which tasks are shipped to
/// DBMSes as plain declarative queries.
pub fn plan_to_select(plan: &LogicalPlan) -> Result<SelectStmt, SchemaError> {
    let mut b = build(plan)?;
    // Materialize the final projection (replace `*` with explicit items so
    // output names are stable even for scans).
    if !b.outputs.is_empty() && matches!(b.stmt.projection.as_slice(), [SelectItem::Wildcard]) {
        b.stmt.projection = b
            .outputs
            .iter()
            .map(|(field, expr)| SelectItem::Expr {
                expr: expr.clone(),
                alias: Some(field.name.clone()),
            })
            .collect();
    }
    Ok(b.stmt)
}

fn build(plan: &LogicalPlan) -> Result<SelectBuilder, SchemaError> {
    match plan {
        LogicalPlan::Scan {
            relation,
            alias,
            fields,
        }
        | LogicalPlan::Placeholder {
            name: relation,
            alias,
            fields,
        } => {
            let stmt = SelectStmt {
                projection: vec![SelectItem::Wildcard],
                from: vec![TableRef::Table {
                    name: relation.clone(),
                    alias: if alias == relation {
                        None
                    } else {
                        Some(alias.clone())
                    },
                }],
                ..Default::default()
            };
            let outputs = fields
                .iter()
                .map(|(n, t)| {
                    (
                        Field::new(Some(alias), n, *t),
                        Expr::qcol(alias.clone(), n.clone()),
                    )
                })
                .collect();
            Ok(SelectBuilder {
                stmt,
                outputs,
                grouped: false,
                next_sub: 0,
            })
        }
        LogicalPlan::Filter { input, predicate } => {
            let mut b = build(input)?;
            if b.grouped || b.has_order_or_limit() || b.stmt.distinct {
                b.wrap();
            }
            let pred = b.rewrite(predicate, &input.schema())?;
            b.stmt.selection = Some(match b.stmt.selection.take() {
                Some(existing) => Expr::and(existing, pred),
                None => pred,
            });
            Ok(b)
        }
        LogicalPlan::Project { input, exprs } => {
            let mut b = build(input)?;
            if b.has_order_or_limit() || b.stmt.distinct {
                b.wrap();
            }
            let in_schema = input.schema();
            let mut new_outputs = Vec::with_capacity(exprs.len());
            for (e, name) in exprs {
                let rewritten = b.rewrite(e, &in_schema)?;
                let ty = infer_type(e, &in_schema).unwrap_or(DataType::Float);
                new_outputs.push((Field::bare(name, ty), rewritten));
            }
            b.outputs = new_outputs;
            b.stmt.projection = b
                .outputs
                .iter()
                .map(|(f, e)| SelectItem::Expr {
                    expr: e.clone(),
                    alias: Some(f.name.clone()),
                })
                .collect();
            Ok(b)
        }
        LogicalPlan::SemiJoin {
            left,
            right,
            on,
            residual,
            negated,
        } => {
            let mut lb = build(left)?;
            if lb.grouped || lb.has_order_or_limit() || lb.stmt.distinct {
                lb.wrap();
            }
            // The right side always becomes a derived table with a fresh
            // alias so inner references are unambiguous even when the same
            // base table appears on both sides (e.g. TPC-H Q18).
            let mut rb = build(right)?;
            rb.next_sub = rb.next_sub.max(lb.next_sub) + 40; // avoid alias clashes
            rb.wrap();
            lb.next_sub = lb.next_sub.max(rb.next_sub);
            let lschema = left.schema();
            let rschema = right.schema();
            let mut inner_conds: Vec<Expr> = Vec::new();
            for (le, re) in on {
                let l = lb.rewrite(le, &lschema)?;
                let r = rb.rewrite(re, &rschema)?;
                inner_conds.push(Expr::eq(l, r));
            }
            if let Some(res) = residual {
                // Residual references the concatenated schema: left refs
                // rewrite through lb, right refs through rb.
                let joined = lschema.join(&rschema);
                let mut err = None;
                let rewritten = res.clone().transform(&mut |x| match &x {
                    Expr::Column { qualifier, name } => {
                        match lschema.resolve(qualifier.as_deref(), name) {
                            Ok(idx) => lb.outputs[idx].1.clone(),
                            Err(_) => match rschema.resolve(qualifier.as_deref(), name) {
                                Ok(idx) => rb.outputs[idx].1.clone(),
                                Err(_) => {
                                    if joined.resolve(qualifier.as_deref(), name).is_err() {
                                        err = Some(SchemaError::Unknown(format!(
                                            "{qualifier:?}.{name}"
                                        )));
                                    }
                                    x
                                }
                            },
                        }
                    }
                    _ => x,
                });
                if let Some(e2) = err {
                    return Err(e2);
                }
                inner_conds.push(rewritten);
            }
            let mut exists_query = rb.stmt;
            exists_query.selection =
                Expr::conjoin(exists_query.selection.take().into_iter().chain(inner_conds));
            let exists = Expr::Exists {
                query: Box::new(exists_query),
                negated: *negated,
            };
            lb.stmt.selection = Some(match lb.stmt.selection.take() {
                Some(existing) => Expr::and(existing, exists),
                None => exists,
            });
            Ok(lb)
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            residual,
        } => {
            let mut lb = build(left)?;
            let mut rb = build(right)?;
            if lb.grouped || lb.has_order_or_limit() || lb.stmt.distinct || !is_spj(&lb.stmt) {
                lb.wrap();
            }
            if rb.grouped || rb.has_order_or_limit() || rb.stmt.distinct || !is_spj(&rb.stmt) {
                rb.wrap();
            }
            let lschema = left.schema();
            let rschema = right.schema();
            // Merge FROM lists and WHERE clauses.
            let mut conds = Vec::new();
            for (le, re) in on {
                let l = lb.rewrite(le, &lschema)?;
                let r = rb.rewrite(re, &rschema)?;
                conds.push(Expr::eq(l, r));
            }
            let joined_schema = lschema.join(&rschema);
            let mut outputs = lb.outputs.clone();
            // Offset sub-counter to keep generated aliases unique.
            let base = lb.next_sub.max(rb.next_sub);
            outputs.extend(rb.outputs.iter().cloned());
            let mut stmt = lb.stmt;
            stmt.from.extend(rb.stmt.from);
            let left_sel = stmt.selection.take();
            let right_sel = rb.stmt.selection;
            let mut b = SelectBuilder {
                stmt,
                outputs,
                grouped: false,
                next_sub: base,
            };
            let residual_rewritten = match residual {
                Some(res) => Some(b.rewrite(res, &joined_schema)?),
                None => None,
            };
            b.stmt.selection = Expr::conjoin(
                left_sel
                    .into_iter()
                    .chain(right_sel)
                    .chain(conds)
                    .chain(residual_rewritten),
            );
            Ok(b)
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            let mut b = build(input)?;
            if b.grouped || b.has_order_or_limit() || b.stmt.distinct {
                b.wrap();
            }
            let in_schema = input.schema();
            let mut items = Vec::new();
            let mut outputs = Vec::new();
            let mut group_exprs = Vec::new();
            for (e, name) in group_by {
                let rewritten = b.rewrite(e, &in_schema)?;
                let ty = infer_type(e, &in_schema).unwrap_or(DataType::Str);
                items.push(SelectItem::Expr {
                    expr: rewritten.clone(),
                    alias: Some(name.clone()),
                });
                group_exprs.push(rewritten.clone());
                outputs.push((Field::bare(name, ty), rewritten));
            }
            for (agg, name) in aggregates {
                let call = AggCall {
                    func: agg.func,
                    arg: match &agg.arg {
                        Some(a) => Some(b.rewrite(a, &in_schema)?),
                        None => None,
                    },
                    distinct: agg.distinct,
                };
                let e = call.to_expr();
                items.push(SelectItem::Expr {
                    expr: e.clone(),
                    alias: Some(name.clone()),
                });
                outputs.push((Field::bare(name, agg.output_type(&in_schema)), e));
            }
            b.stmt.projection = items;
            b.stmt.group_by = group_exprs;
            b.outputs = outputs;
            b.grouped = true;
            Ok(b)
        }
        LogicalPlan::Sort { input, keys } => {
            let mut b = build(input)?;
            if b.has_order_or_limit() {
                b.wrap();
            }
            let in_schema = input.schema();
            let mut order_by = Vec::new();
            for (e, desc) in keys {
                let rewritten = b.rewrite(e, &in_schema)?;
                order_by.push(OrderByExpr {
                    expr: rewritten,
                    desc: *desc,
                });
            }
            b.stmt.order_by = order_by;
            Ok(b)
        }
        LogicalPlan::Limit { input, fetch } => {
            let mut b = build(input)?;
            if b.stmt.limit.is_some() {
                b.wrap();
            }
            b.stmt.limit = Some(*fetch);
            Ok(b)
        }
        LogicalPlan::SubqueryAlias { input, alias } => {
            let mut b = build(input)?;
            // Render the input as a derived table under the given alias.
            if matches!(b.stmt.projection.as_slice(), [SelectItem::Wildcard]) {
                b.stmt.projection = b
                    .outputs
                    .iter()
                    .map(|(f, e)| SelectItem::Expr {
                        expr: e.clone(),
                        alias: Some(f.name.clone()),
                    })
                    .collect();
            }
            let inner = std::mem::take(&mut b.stmt);
            let outputs = b
                .outputs
                .iter()
                .map(|(f, _)| {
                    (
                        Field::new(Some(alias), &f.name, f.data_type),
                        Expr::qcol(alias.clone(), f.name.clone()),
                    )
                })
                .collect();
            Ok(SelectBuilder {
                stmt: SelectStmt {
                    projection: vec![SelectItem::Wildcard],
                    from: vec![TableRef::Derived {
                        query: Box::new(inner),
                        alias: alias.clone(),
                    }],
                    ..Default::default()
                },
                outputs,
                grouped: false,
                next_sub: b.next_sub,
            })
        }
        LogicalPlan::OneRow => Ok(SelectBuilder {
            stmt: SelectStmt {
                projection: vec![SelectItem::Wildcard],
                ..Default::default()
            },
            outputs: Vec::new(),
            grouped: false,
            next_sub: 0,
        }),
        LogicalPlan::Distinct { input } => {
            let mut b = build(input)?;
            if b.grouped || b.has_order_or_limit() || b.stmt.distinct {
                b.wrap();
            }
            // DISTINCT applies to the visible output columns.
            if matches!(b.stmt.projection.as_slice(), [SelectItem::Wildcard]) {
                b.stmt.projection = b
                    .outputs
                    .iter()
                    .map(|(f, e)| SelectItem::Expr {
                        expr: e.clone(),
                        alias: Some(f.name.clone()),
                    })
                    .collect();
            }
            b.stmt.distinct = true;
            Ok(b)
        }
    }
}

/// True if a statement is a plain select-project-join block whose FROM items
/// can be merged with another block's.
fn is_spj(s: &SelectStmt) -> bool {
    s.group_by.is_empty()
        && s.having.is_none()
        && s.order_by.is_empty()
        && s.limit.is_none()
        && !s.distinct
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::display::{render_select_string, Dialect};
    use crate::value::Value;

    fn scan(rel: &str, alias: &str, cols: &[(&str, DataType)]) -> LogicalPlan {
        LogicalPlan::Scan {
            relation: rel.to_string(),
            alias: alias.to_string(),
            fields: cols.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
        }
    }

    #[test]
    fn schema_resolution() {
        let s = scan("t", "t", &[("a", DataType::Int), ("b", DataType::Str)]);
        let schema = s.schema();
        assert_eq!(schema.resolve(None, "a"), Ok(0));
        assert_eq!(schema.resolve(Some("t"), "b"), Ok(1));
        assert!(matches!(
            schema.resolve(None, "zz"),
            Err(SchemaError::Unknown(_))
        ));
        // Case-insensitive.
        assert_eq!(schema.resolve(Some("T"), "A"), Ok(0));
    }

    #[test]
    fn ambiguous_columns_detected() {
        let l = scan("t", "t1", &[("a", DataType::Int)]);
        let r = scan("t", "t2", &[("a", DataType::Int)]);
        let j = l.join(r, vec![(Expr::qcol("t1", "a"), Expr::qcol("t2", "a"))]);
        let schema = j.schema();
        assert!(matches!(
            schema.resolve(None, "a"),
            Err(SchemaError::Ambiguous(_))
        ));
        assert_eq!(schema.resolve(Some("t2"), "a"), Ok(1));
    }

    #[test]
    fn join_schema_concat() {
        let l = scan("l", "l", &[("x", DataType::Int)]);
        let r = scan("r", "r", &[("y", DataType::Str)]);
        let j = l.join(r, vec![]);
        assert_eq!(j.schema().len(), 2);
    }

    #[test]
    fn type_inference() {
        let s = scan(
            "t",
            "t",
            &[
                ("i", DataType::Int),
                ("f", DataType::Float),
                ("d", DataType::Date),
                ("s", DataType::Str),
            ],
        );
        let schema = s.schema();
        let check = |sql: &str, ty: DataType| {
            let e = crate::parser::parse_expr(sql).unwrap();
            assert_eq!(infer_type(&e, &schema).unwrap(), ty, "for {sql}");
        };
        check("i + 1", DataType::Int);
        check("i + f", DataType::Float);
        check("i / 2", DataType::Float);
        check("d + interval '1' year", DataType::Date);
        check("d - d", DataType::Int);
        check("i < 3", DataType::Bool);
        check("s || 'x'", DataType::Str);
        check("extract(year from d)", DataType::Int);
        check("count(*)", DataType::Int);
        check("sum(i)", DataType::Int);
        check("avg(i)", DataType::Float);
        check("case when i > 0 then 'pos' else 'neg' end", DataType::Str);
        check("cast(i as double)", DataType::Float);
    }

    #[test]
    fn lower_scan_filter_project() {
        let plan = scan("t", "t", &[("a", DataType::Int), ("b", DataType::Int)])
            .filter(Expr::binary(
                BinaryOp::Gt,
                Expr::qcol("t", "a"),
                Expr::lit(Value::Int(5)),
            ))
            .project(vec![(Expr::qcol("t", "b"), "b".to_string())]);
        let stmt = plan_to_select(&plan).unwrap();
        let sql = render_select_string(&stmt, Dialect::Generic);
        assert_eq!(sql, "SELECT t.b AS b FROM t WHERE t.a > 5");
    }

    #[test]
    fn lower_join_merges_from() {
        let l = scan("l", "l", &[("x", DataType::Int)]);
        let r = scan("r", "r", &[("x", DataType::Int)]);
        let plan = l.join(r, vec![(Expr::qcol("l", "x"), Expr::qcol("r", "x"))]);
        let stmt = plan_to_select(&plan).unwrap();
        let sql = render_select_string(&stmt, Dialect::Generic);
        assert_eq!(sql, "SELECT l.x AS x, r.x AS x FROM l, r WHERE l.x = r.x");
    }

    #[test]
    fn lower_aggregate() {
        let plan = LogicalPlan::Aggregate {
            input: Box::new(scan(
                "t",
                "t",
                &[("g", DataType::Str), ("v", DataType::Float)],
            )),
            group_by: vec![(Expr::qcol("t", "g"), "g".to_string())],
            aggregates: vec![(
                AggCall {
                    func: AggFunc::Sum,
                    arg: Some(Expr::qcol("t", "v")),
                    distinct: false,
                },
                "total".to_string(),
            )],
        };
        let stmt = plan_to_select(&plan).unwrap();
        let sql = render_select_string(&stmt, Dialect::Generic);
        assert_eq!(
            sql,
            "SELECT t.g AS g, sum(t.v) AS total FROM t GROUP BY t.g"
        );
    }

    #[test]
    fn lower_filter_after_aggregate_wraps() {
        let agg = LogicalPlan::Aggregate {
            input: Box::new(scan(
                "t",
                "t",
                &[("g", DataType::Str), ("v", DataType::Float)],
            )),
            group_by: vec![(Expr::qcol("t", "g"), "g".to_string())],
            aggregates: vec![(
                AggCall {
                    func: AggFunc::Sum,
                    arg: Some(Expr::qcol("t", "v")),
                    distinct: false,
                },
                "total".to_string(),
            )],
        };
        let filtered = agg.filter(Expr::binary(
            BinaryOp::Gt,
            Expr::col("total"),
            Expr::lit(Value::Int(10)),
        ));
        let stmt = plan_to_select(&filtered).unwrap();
        let sql = render_select_string(&stmt, Dialect::Generic);
        assert!(sql.contains("FROM (SELECT"), "should wrap: {sql}");
        assert!(sql.contains("xdb_sub0"), "derived alias: {sql}");
        // Round-trips through the parser.
        crate::parser::parse_select(&sql).unwrap();
    }

    #[test]
    fn lower_post_agg_projection_inlines() {
        // Project(total / cnt) over Aggregate — references substitute to
        // the aggregate expressions inside the same block.
        let agg = LogicalPlan::Aggregate {
            input: Box::new(scan("t", "t", &[("v", DataType::Float)])),
            group_by: vec![],
            aggregates: vec![
                (
                    AggCall {
                        func: AggFunc::Sum,
                        arg: Some(Expr::qcol("t", "v")),
                        distinct: false,
                    },
                    "total".to_string(),
                ),
                (
                    AggCall {
                        func: AggFunc::Count,
                        arg: None,
                        distinct: false,
                    },
                    "cnt".to_string(),
                ),
            ],
        };
        let proj = agg.project(vec![(
            Expr::binary(BinaryOp::Div, Expr::col("total"), Expr::col("cnt")),
            "mean".to_string(),
        )]);
        let stmt = plan_to_select(&proj).unwrap();
        let sql = render_select_string(&stmt, Dialect::Generic);
        assert_eq!(sql, "SELECT sum(t.v) / count(*) AS mean FROM t");
    }

    #[test]
    fn lower_sort_limit() {
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Sort {
                input: Box::new(scan("t", "t", &[("a", DataType::Int)])),
                keys: vec![(Expr::qcol("t", "a"), true)],
            }),
            fetch: 10,
        };
        let sql = render_select_string(&plan_to_select(&plan).unwrap(), Dialect::Generic);
        assert_eq!(sql, "SELECT t.a AS a FROM t ORDER BY t.a DESC LIMIT 10");
    }

    #[test]
    fn lower_placeholder_as_table() {
        let plan = LogicalPlan::Placeholder {
            name: "xdb_vvn".to_string(),
            alias: "vvn".to_string(),
            fields: vec![("type".to_string(), DataType::Str)],
        };
        let sql = render_select_string(&plan_to_select(&plan).unwrap(), Dialect::Generic);
        assert_eq!(sql, "SELECT vvn.type AS type FROM xdb_vvn AS vvn");
    }

    #[test]
    fn compact_notation_matches_paper_style() {
        let v = scan("Vaccines", "V", &[("id", DataType::Int)]);
        let vn = scan("Vaccination", "VN", &[("v_id", DataType::Int)]);
        let plan = LogicalPlan::Project {
            input: Box::new(v.project(vec![(Expr::qcol("V", "id"), "id".into())]).join(
                vn.project(vec![(Expr::qcol("VN", "v_id"), "v_id".into())]),
                vec![],
            )),
            exprs: vec![(Expr::col("id"), "id".into())],
        };
        assert_eq!(plan.compact_notation(), "π(⋈(π(V),π(VN)))");
    }

    #[test]
    fn lower_distinct() {
        let plan = LogicalPlan::Distinct {
            input: Box::new(scan("t", "t", &[("a", DataType::Int)])),
        };
        let sql = render_select_string(&plan_to_select(&plan).unwrap(), Dialect::Generic);
        assert_eq!(sql, "SELECT DISTINCT t.a AS a FROM t");
    }

    #[test]
    fn wrap_disambiguates_duplicate_names() {
        // Join of two scans with the same column name, then aggregate on
        // top forces a wrap with unique aliases.
        let l = scan("t", "t1", &[("a", DataType::Int)]);
        let r = scan("t", "t2", &[("a", DataType::Int)]);
        let j = l.join(r, vec![(Expr::qcol("t1", "a"), Expr::qcol("t2", "a"))]);
        let sorted = LogicalPlan::Sort {
            input: Box::new(j),
            keys: vec![(Expr::qcol("t1", "a"), false)],
        };
        // Filter over sort forces wrap.
        let f = sorted.filter(Expr::binary(
            BinaryOp::Gt,
            Expr::qcol("t2", "a"),
            Expr::lit(Value::Int(0)),
        ));
        let stmt = plan_to_select(&f).unwrap();
        let sql = render_select_string(&stmt, Dialect::Generic);
        crate::parser::parse_select(&sql).unwrap();
        assert!(sql.matches(" AS ").count() >= 2, "{sql}");
    }
}
