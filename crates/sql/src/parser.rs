//! Recursive-descent SQL parser for the federation dialect.
//!
//! Covers the analytical subset needed by the paper's workload (TPC-H Q3,
//! Q5, Q7, Q8, Q9, Q10 and the motivating vaccination query) plus the DDL
//! statements the delegation engine emits (CREATE VIEW / CREATE FOREIGN
//! TABLE / CREATE TABLE AS / DROP).

use crate::ast::*;
use crate::lexer::{tokenize, LexError, Spanned, Token};
use crate::value::{date, DataType, Value};
use std::fmt;

/// Parse error carrying a human-readable message and a byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            offset: e.offset,
        }
    }
}

type Result<T> = std::result::Result<T, ParseError>;

/// Report a parse failure to the process-global event log (`Warn`) before
/// handing the error back. Generated DDL always parses, so these events
/// only fire on malformed user input — rare, and identical no matter which
/// executor the query would have used.
fn note_parse_failure<T>(sql: &str, result: Result<T>) -> Result<T> {
    if let Err(e) = &result {
        let offset = e.offset.to_string();
        xdb_obs::telemetry::global().events.log(
            xdb_obs::Level::Warn,
            "sql.parse",
            None,
            0.0,
            format!("parse error: {}", e.message),
            &[("offset", &offset), ("sql", sql)],
        );
    }
    result
}

/// Parse a single SQL statement (a trailing semicolon is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    note_parse_failure(sql, parse_statement_inner(sql))
}

fn parse_statement_inner(sql: &str) -> Result<Statement> {
    let mut p = Parser::new(sql)?;
    let stmt = p.statement()?;
    p.eat(&Token::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a semicolon-separated script into statements.
pub fn parse_script(sql: &str) -> Result<Vec<Statement>> {
    note_parse_failure(sql, parse_script_inner(sql))
}

fn parse_script_inner(sql: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(sql)?;
    let mut out = Vec::new();
    loop {
        while p.eat(&Token::Semicolon) {}
        if p.peek() == &Token::Eof {
            break;
        }
        out.push(p.statement()?);
        if !p.eat(&Token::Semicolon) {
            break;
        }
    }
    p.expect_eof()?;
    Ok(out)
}

/// Parse just a SELECT statement.
pub fn parse_select(sql: &str) -> Result<SelectStmt> {
    match parse_statement(sql)? {
        Statement::Select(s) => Ok(*s),
        other => Err(ParseError {
            message: format!("expected SELECT statement, got {other:?}"),
            offset: 0,
        }),
    }
}

/// Parse a scalar expression (used by tests and plan rewriting).
pub fn parse_expr(sql: &str) -> Result<Expr> {
    let mut p = Parser::new(sql)?;
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn new(sql: &str) -> Result<Parser> {
        Ok(Parser {
            tokens: tokenize(sql)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].token
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.error(format!("expected {t}, found {}", self.peek())))
        }
    }

    fn error(&self, message: String) -> ParseError {
        ParseError {
            message,
            offset: self.offset(),
        }
    }

    /// Is the current token the given keyword (case-insensitive)?
    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().keyword().is_some_and(|k| k == kw)
    }

    fn peek2_kw(&self, kw: &str) -> bool {
        self.peek2().keyword().is_some_and(|k| k == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected keyword {kw}, found {}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.peek() == &Token::Eof {
            Ok(())
        } else {
            Err(self.error(format!("unexpected trailing input: {}", self.peek())))
        }
    }

    /// Accept an identifier (bare or quoted).
    fn identifier(&mut self) -> Result<String> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.advance();
                Ok(s)
            }
            Token::QuotedIdent(s) => {
                self.advance();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    // ---------------------------------------------------------- statements

    fn statement(&mut self) -> Result<Statement> {
        if self.peek_kw("SELECT") {
            return Ok(Statement::Select(Box::new(self.select()?)));
        }
        if self.eat_kw("EXPLAIN") {
            return Ok(Statement::Explain(Box::new(self.select()?)));
        }
        if self.peek_kw("CREATE") {
            return self.create();
        }
        if self.peek_kw("INSERT") {
            return self.insert();
        }
        if self.peek_kw("DROP") {
            return self.drop_stmt();
        }
        Err(self.error(format!("expected statement, found {}", self.peek())))
    }

    fn create(&mut self) -> Result<Statement> {
        self.expect_kw("CREATE")?;
        let or_replace = if self.eat_kw("OR") {
            self.expect_kw("REPLACE")?;
            true
        } else {
            false
        };
        if self.eat_kw("VIEW") {
            let name = self.identifier()?;
            self.expect_kw("AS")?;
            let query = self.select()?;
            return Ok(Statement::CreateView {
                name,
                query: Box::new(query),
                or_replace,
            });
        }
        if self.eat_kw("FOREIGN") {
            self.expect_kw("TABLE")?;
            let name = self.identifier()?;
            let columns = self.column_defs()?;
            self.expect_kw("SERVER")?;
            let server = self.identifier()?;
            let mut remote_name = None;
            if self.eat_kw("OPTIONS") {
                self.expect(&Token::LParen)?;
                loop {
                    let key = self.identifier()?;
                    let val = match self.advance() {
                        Token::StringLit(s) => s,
                        other => {
                            return Err(
                                self.error(format!("expected string option value, found {other}"))
                            )
                        }
                    };
                    if key.eq_ignore_ascii_case("remote") || key.eq_ignore_ascii_case("table_name")
                    {
                        remote_name = Some(val);
                    }
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            }
            return Ok(Statement::CreateForeignTable {
                name,
                columns,
                server,
                remote_name,
            });
        }
        self.expect_kw("TABLE")?;
        let if_not_exists = if self.eat_kw("IF") {
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.identifier()?;
        if self.eat_kw("AS") {
            let query = self.select()?;
            return Ok(Statement::CreateTableAs {
                name,
                query: Box::new(query),
            });
        }
        let columns = self.column_defs()?;
        Ok(Statement::CreateTable {
            name,
            columns,
            if_not_exists,
        })
    }

    fn column_defs(&mut self) -> Result<Vec<ColumnDef>> {
        self.expect(&Token::LParen)?;
        let mut cols = Vec::new();
        loop {
            let name = self.identifier()?;
            let ty_name = self.identifier()?;
            // Swallow an optional length/precision like VARCHAR(25).
            if self.eat(&Token::LParen) {
                while !self.eat(&Token::RParen) {
                    self.advance();
                }
            }
            let data_type = DataType::parse(&ty_name)
                .ok_or_else(|| self.error(format!("unknown type {ty_name:?}")))?;
            cols.push(ColumnDef { name, data_type });
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(cols)
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.identifier()?;
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            rows.push(row);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn drop_stmt(&mut self) -> Result<Statement> {
        self.expect_kw("DROP")?;
        let kind = if self.eat_kw("VIEW") {
            ObjectKind::View
        } else if self.eat_kw("FOREIGN") {
            self.expect_kw("TABLE")?;
            ObjectKind::ForeignTable
        } else {
            self.expect_kw("TABLE")?;
            ObjectKind::Table
        };
        let if_exists = if self.eat_kw("IF") {
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.identifier()?;
        Ok(Statement::Drop {
            kind,
            name,
            if_exists,
        })
    }

    // -------------------------------------------------------------- select

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut projection = Vec::new();
        loop {
            projection.push(self.select_item()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_kw("FROM") {
            loop {
                from.push(self.table_ref()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let selection = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderByExpr { expr, desc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.advance() {
                Token::IntLit(n) if n >= 0 => Some(n as u64),
                other => return Err(self.error(format!("expected LIMIT count, found {other}"))),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            projection,
            from,
            selection,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if matches!(self.peek(), Token::Ident(_) | Token::QuotedIdent(_))
            && self.peek2() == &Token::Dot
        {
            let save = self.pos;
            let q = self.identifier()?;
            self.expect(&Token::Dot)?;
            if self.eat(&Token::Star) {
                return Ok(SelectItem::QualifiedWildcard(q));
            }
            self.pos = save;
        }
        let expr = self.expr()?;
        let alias = self.optional_alias(&["FROM"])?;
        Ok(SelectItem::Expr { expr, alias })
    }

    /// `[AS] alias`, where a bare identifier is only taken as an alias if it
    /// is not one of the clause keywords in `stop`.
    fn optional_alias(&mut self, extra_stop: &[&str]) -> Result<Option<String>> {
        if self.eat_kw("AS") {
            return Ok(Some(self.identifier()?));
        }
        if let Token::Ident(s) = self.peek() {
            let upper = s.to_ascii_uppercase();
            const STOP: &[&str] = &[
                "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "ON", "JOIN", "INNER",
                "LEFT", "RIGHT", "CROSS", "UNION", "AND", "OR", "AS", "SELECT",
            ];
            if !STOP.contains(&upper.as_str()) && !extra_stop.contains(&upper.as_str()) {
                let alias = s.clone();
                self.advance();
                return Ok(Some(alias));
            }
        }
        if let Token::QuotedIdent(s) = self.peek() {
            let alias = s.clone();
            self.advance();
            return Ok(Some(alias));
        }
        Ok(None)
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.table_primary()?;
        loop {
            let is_join = self.peek_kw("JOIN") || (self.peek_kw("INNER") && self.peek2_kw("JOIN"));
            if !is_join {
                break;
            }
            self.eat_kw("INNER");
            self.expect_kw("JOIN")?;
            let right = self.table_primary()?;
            self.expect_kw("ON")?;
            let on = self.expr()?;
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                on: Box::new(on),
            };
        }
        Ok(left)
    }

    fn table_primary(&mut self) -> Result<TableRef> {
        if self.eat(&Token::LParen) {
            if self.peek_kw("SELECT") {
                let query = self.select()?;
                self.expect(&Token::RParen)?;
                let alias = self
                    .optional_alias(&[])?
                    .ok_or_else(|| self.error("derived table requires an alias".into()))?;
                return Ok(TableRef::Derived {
                    query: Box::new(query),
                    alias,
                });
            }
            let inner = self.table_ref()?;
            self.expect(&Token::RParen)?;
            return Ok(inner);
        }
        let name = self.identifier()?;
        let alias = self.optional_alias(&[])?;
        Ok(TableRef::Table { name, alias })
    }

    // --------------------------------------------------------- expressions

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::binary(BinaryOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::binary(BinaryOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            // Fold NOT over subquery predicates into their negated forms.
            return Ok(match inner {
                Expr::Exists { query, negated } => Expr::Exists {
                    query,
                    negated: !negated,
                },
                Expr::InSubquery {
                    expr,
                    query,
                    negated,
                } => Expr::InSubquery {
                    expr,
                    query,
                    negated: !negated,
                },
                other => Expr::Unary {
                    op: UnaryOp::Not,
                    expr: Box::new(other),
                },
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // Postfix predicates: IS [NOT] NULL, [NOT] BETWEEN/LIKE/IN.
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = if self.peek_kw("NOT")
            && (self.peek2_kw("BETWEEN") || self.peek2_kw("LIKE") || self.peek2_kw("IN"))
        {
            self.advance();
            true
        } else {
            false
        };
        if self.eat_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = match self.advance() {
                Token::StringLit(s) => s,
                other => {
                    return Err(self.error(format!("expected LIKE pattern string, found {other}")))
                }
            };
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern,
                negated,
            });
        }
        if self.eat_kw("IN") {
            self.expect(&Token::LParen)?;
            if self.peek_kw("SELECT") {
                let query = self.select()?;
                self.expect(&Token::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    query: Box::new(query),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        let op = match self.peek() {
            Token::Eq => BinaryOp::Eq,
            Token::NotEq => BinaryOp::NotEq,
            Token::Lt => BinaryOp::Lt,
            Token::LtEq => BinaryOp::LtEq,
            Token::Gt => BinaryOp::Gt,
            Token::GtEq => BinaryOp::GtEq,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.additive()?;
        Ok(Expr::binary(op, left, right))
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinaryOp::Plus,
                Token::Minus => BinaryOp::Minus,
                Token::Concat => BinaryOp::Concat,
                _ => break,
            };
            self.advance();
            let right = self.multiplicative()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinaryOp::Mul,
                Token::Slash => BinaryOp::Div,
                Token::Percent => BinaryOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.unary()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&Token::Minus) {
            let inner = self.unary()?;
            // Fold negation of numeric literals for cleaner ASTs.
            return Ok(match inner {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Float(f)) => Expr::Literal(Value::Float(-f)),
                other => Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        if self.eat(&Token::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Token::IntLit(i) => {
                self.advance();
                Ok(Expr::lit(Value::Int(i)))
            }
            Token::FloatLit(f) => {
                self.advance();
                Ok(Expr::lit(Value::Float(f)))
            }
            Token::StringLit(s) => {
                self.advance();
                Ok(Expr::lit(Value::str(s)))
            }
            Token::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(_) | Token::QuotedIdent(_) => self.ident_led_expr(),
            other => Err(self.error(format!("expected expression, found {other}"))),
        }
    }

    /// Expressions that start with an identifier: keyword-led constructs
    /// (CASE, EXTRACT, DATE, INTERVAL, CAST, TRUE/FALSE/NULL), function
    /// calls, and column references.
    fn ident_led_expr(&mut self) -> Result<Expr> {
        // Keyword-led constructs only trigger on bare identifiers.
        if let Some(kw) = self.peek().keyword() {
            // Reserved clause keywords cannot start an expression; quoting
            // them is required to use them as column names.
            const RESERVED_IN_EXPR: &[&str] = &[
                "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "BY", "ON", "JOIN", "SELECT",
                "AND", "OR", "WHEN", "THEN", "ELSE", "END", "AS",
            ];
            if RESERVED_IN_EXPR.contains(&kw.as_str()) {
                return Err(self.error(format!("unexpected keyword {kw} in expression")));
            }
            match kw.as_str() {
                "CASE" => return self.case_expr(),
                "EXISTS" if self.peek2() == &Token::LParen => {
                    self.advance();
                    self.expect(&Token::LParen)?;
                    let query = self.select()?;
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::Exists {
                        query: Box::new(query),
                        negated: false,
                    });
                }
                "EXTRACT" => return self.extract_expr(),
                "CAST" => return self.cast_expr(),
                "TRUE" => {
                    self.advance();
                    return Ok(Expr::lit(Value::Bool(true)));
                }
                "FALSE" => {
                    self.advance();
                    return Ok(Expr::lit(Value::Bool(false)));
                }
                "NULL" => {
                    self.advance();
                    return Ok(Expr::lit(Value::Null));
                }
                "DATE" => {
                    if let Token::StringLit(s) = self.peek2().clone() {
                        self.advance();
                        self.advance();
                        let days = date::parse(&s)
                            .ok_or_else(|| self.error(format!("invalid date literal {s:?}")))?;
                        return Ok(Expr::lit(Value::Date(days)));
                    }
                }
                "INTERVAL" => {
                    if matches!(self.peek2(), Token::StringLit(_) | Token::IntLit(_)) {
                        self.advance();
                        let n: i64 = match self.advance() {
                            Token::StringLit(s) => s.trim().parse().map_err(|_| {
                                self.error(format!("invalid interval quantity {s:?}"))
                            })?,
                            Token::IntLit(i) => i,
                            _ => unreachable!(),
                        };
                        let unit_name = self.identifier()?;
                        let unit = match unit_name.to_ascii_uppercase().as_str() {
                            "YEAR" | "YEARS" => IntervalUnit::Year,
                            "MONTH" | "MONTHS" => IntervalUnit::Month,
                            "DAY" | "DAYS" => IntervalUnit::Day,
                            other => {
                                return Err(self.error(format!("unknown interval unit {other:?}")))
                            }
                        };
                        return Ok(Expr::Interval { n, unit });
                    }
                }
                _ => {}
            }
        }
        let first = self.identifier()?;
        // Function call.
        if self.peek() == &Token::LParen {
            self.advance();
            if first.eq_ignore_ascii_case("count") && self.eat(&Token::Star) {
                self.expect(&Token::RParen)?;
                return Ok(Expr::CountStar);
            }
            let distinct = self.eat_kw("DISTINCT");
            let mut args = Vec::new();
            if self.peek() != &Token::RParen {
                loop {
                    args.push(self.expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::Function {
                name: first.to_ascii_lowercase(),
                args,
                distinct,
            });
        }
        // Qualified column.
        if self.eat(&Token::Dot) {
            let name = self.identifier()?;
            return Ok(Expr::Column {
                qualifier: Some(first),
                name,
            });
        }
        Ok(Expr::col(first))
    }

    fn case_expr(&mut self) -> Result<Expr> {
        self.expect_kw("CASE")?;
        let operand = if !self.peek_kw("WHEN") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        let mut branches = Vec::new();
        while self.eat_kw("WHEN") {
            let when = self.expr()?;
            self.expect_kw("THEN")?;
            let then = self.expr()?;
            branches.push((when, then));
        }
        if branches.is_empty() {
            return Err(self.error("CASE requires at least one WHEN branch".into()));
        }
        let else_expr = if self.eat_kw("ELSE") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw("END")?;
        Ok(Expr::Case {
            operand,
            branches,
            else_expr,
        })
    }

    fn extract_expr(&mut self) -> Result<Expr> {
        self.expect_kw("EXTRACT")?;
        self.expect(&Token::LParen)?;
        let field_name = self.identifier()?;
        let field = match field_name.to_ascii_uppercase().as_str() {
            "YEAR" => DateField::Year,
            "MONTH" => DateField::Month,
            "DAY" => DateField::Day,
            other => return Err(self.error(format!("unknown EXTRACT field {other:?}"))),
        };
        self.expect_kw("FROM")?;
        let expr = self.expr()?;
        self.expect(&Token::RParen)?;
        Ok(Expr::Extract {
            field,
            expr: Box::new(expr),
        })
    }

    fn cast_expr(&mut self) -> Result<Expr> {
        self.expect_kw("CAST")?;
        self.expect(&Token::LParen)?;
        let expr = self.expr()?;
        self.expect_kw("AS")?;
        let ty_name = self.identifier()?;
        if self.eat(&Token::LParen) {
            while !self.eat(&Token::RParen) {
                self.advance();
            }
        }
        let data_type = DataType::parse(&ty_name)
            .ok_or_else(|| self.error(format!("unknown type {ty_name:?}")))?;
        self.expect(&Token::RParen)?;
        Ok(Expr::Cast {
            expr: Box::new(expr),
            data_type,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let s = parse_select("SELECT a, b AS bee FROM t WHERE a > 1").unwrap();
        assert_eq!(s.projection.len(), 2);
        assert!(matches!(
            &s.projection[1],
            SelectItem::Expr { alias: Some(a), .. } if a == "bee"
        ));
        assert_eq!(s.from.len(), 1);
        assert!(s.selection.is_some());
    }

    #[test]
    fn implicit_alias_without_as() {
        let s = parse_select("SELECT c.id FROM Citizen c, Vaccines v").unwrap();
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[0].scope_alias(), Some("c"));
        assert_eq!(s.from[1].scope_alias(), Some("v"));
    }

    #[test]
    fn join_syntax() {
        let s =
            parse_select("SELECT * FROM a JOIN b ON a.x = b.x INNER JOIN c ON b.y = c.y").unwrap();
        assert_eq!(s.from.len(), 1);
        assert!(matches!(&s.from[0], TableRef::Join { .. }));
    }

    #[test]
    fn derived_table() {
        let s = parse_select(
            "SELECT nation, sum(amount) FROM (SELECT n_name AS nation, 1 AS amount FROM nation) AS profit GROUP BY nation",
        )
        .unwrap();
        assert!(matches!(&s.from[0], TableRef::Derived { alias, .. } if alias == "profit"));
        assert_eq!(s.group_by.len(), 1);
    }

    #[test]
    fn case_when() {
        let e = parse_expr(
            "case when c.age between 20 and 30 then '20-30' when c.age between 30 and 40 then '30-40' else 'other' end",
        )
        .unwrap();
        match e {
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                assert!(operand.is_none());
                assert_eq!(branches.len(), 2);
                assert!(else_expr.is_some());
            }
            other => panic!("expected CASE, got {other:?}"),
        }
    }

    #[test]
    fn date_and_interval() {
        let e = parse_expr("o_orderdate < date '1995-03-15' + interval '1' year").unwrap();
        let cols = e.referenced_columns();
        assert_eq!(cols, vec![(None, "o_orderdate")]);
        // DATE used as a plain identifier still works.
        let e2 = parse_expr("date + 1").unwrap();
        assert!(matches!(
            e2,
            Expr::Binary {
                op: BinaryOp::Plus,
                ..
            }
        ));
    }

    #[test]
    fn extract_year() {
        let e = parse_expr("extract(year from l_shipdate)").unwrap();
        assert!(matches!(
            e,
            Expr::Extract {
                field: DateField::Year,
                ..
            }
        ));
    }

    #[test]
    fn like_between_in_not() {
        assert!(matches!(
            parse_expr("p_name like '%green%'").unwrap(),
            Expr::Like { negated: false, .. }
        ));
        assert!(matches!(
            parse_expr("p_name not like '%green%'").unwrap(),
            Expr::Like { negated: true, .. }
        ));
        assert!(matches!(
            parse_expr("x not between 1 and 2").unwrap(),
            Expr::Between { negated: true, .. }
        ));
        assert!(matches!(
            parse_expr("x in (1, 2, 3)").unwrap(),
            Expr::InList { negated: false, .. }
        ));
        assert!(matches!(
            parse_expr("x is not null").unwrap(),
            Expr::IsNull { negated: true, .. }
        ));
    }

    #[test]
    fn aggregates() {
        let s = parse_select(
            "SELECT l_orderkey, sum(l_extendedprice * (1 - l_discount)) AS revenue FROM lineitem GROUP BY l_orderkey ORDER BY revenue DESC, l_orderkey LIMIT 10",
        )
        .unwrap();
        assert_eq!(s.order_by.len(), 2);
        assert!(s.order_by[0].desc);
        assert!(!s.order_by[1].desc);
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn count_star_and_distinct() {
        assert_eq!(parse_expr("count(*)").unwrap(), Expr::CountStar);
        assert!(matches!(
            parse_expr("count(distinct x)").unwrap(),
            Expr::Function { distinct: true, .. }
        ));
    }

    #[test]
    fn operator_precedence() {
        // a + b * c parses as a + (b * c)
        let e = parse_expr("a + b * c").unwrap();
        match e {
            Expr::Binary {
                op: BinaryOp::Plus,
                right,
                ..
            } => assert!(matches!(
                *right,
                Expr::Binary {
                    op: BinaryOp::Mul,
                    ..
                }
            )),
            other => panic!("bad precedence: {other:?}"),
        }
        // OR binds looser than AND.
        let e = parse_expr("a = 1 or b = 2 and c = 3").unwrap();
        assert!(matches!(
            e,
            Expr::Binary {
                op: BinaryOp::Or,
                ..
            }
        ));
    }

    #[test]
    fn qualified_wildcard() {
        let s = parse_select("SELECT t.* FROM t").unwrap();
        assert!(matches!(
            &s.projection[0],
            SelectItem::QualifiedWildcard(q) if q == "t"
        ));
    }

    #[test]
    fn ddl_create_view() {
        let stmt = parse_statement("CREATE VIEW vvn AS SELECT v.type FROM Vaccines v").unwrap();
        assert!(matches!(stmt, Statement::CreateView { .. }));
        let stmt = parse_statement("CREATE OR REPLACE VIEW v2 AS SELECT 1 AS one").unwrap();
        assert!(matches!(
            stmt,
            Statement::CreateView {
                or_replace: true,
                ..
            }
        ));
    }

    #[test]
    fn ddl_foreign_table() {
        let stmt = parse_statement(
            "CREATE FOREIGN TABLE vvn (type VARCHAR, c_id BIGINT) SERVER vdb OPTIONS (remote 'xdb_vvn')",
        )
        .unwrap();
        match stmt {
            Statement::CreateForeignTable {
                name,
                columns,
                server,
                remote_name,
            } => {
                assert_eq!(name, "vvn");
                assert_eq!(columns.len(), 2);
                assert_eq!(server, "vdb");
                assert_eq!(remote_name.as_deref(), Some("xdb_vvn"));
            }
            other => panic!("expected foreign table, got {other:?}"),
        }
    }

    #[test]
    fn ddl_create_table_as_and_drop() {
        assert!(matches!(
            parse_statement("CREATE TABLE m AS SELECT * FROM v").unwrap(),
            Statement::CreateTableAs { .. }
        ));
        assert!(matches!(
            parse_statement("DROP VIEW IF EXISTS v").unwrap(),
            Statement::Drop {
                kind: ObjectKind::View,
                if_exists: true,
                ..
            }
        ));
        assert!(matches!(
            parse_statement("DROP FOREIGN TABLE ft").unwrap(),
            Statement::Drop {
                kind: ObjectKind::ForeignTable,
                ..
            }
        ));
    }

    #[test]
    fn insert_values() {
        let stmt =
            parse_statement("INSERT INTO t VALUES (1, 'a', date '1995-01-01'), (2, 'b', null)")
                .unwrap();
        match stmt {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "t");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0].len(), 3);
            }
            other => panic!("expected insert, got {other:?}"),
        }
    }

    #[test]
    fn script_parsing() {
        let stmts =
            parse_script("CREATE TABLE a (x BIGINT); INSERT INTO a VALUES (1); SELECT * FROM a;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn explain() {
        assert!(matches!(
            parse_statement("EXPLAIN SELECT * FROM t").unwrap(),
            Statement::Explain(_)
        ));
    }

    #[test]
    fn negative_numbers_folded() {
        assert_eq!(parse_expr("-5").unwrap(), Expr::lit(Value::Int(-5)));
        assert_eq!(parse_expr("-2.5").unwrap(), Expr::lit(Value::Float(-2.5)));
    }

    #[test]
    fn errors_have_offsets() {
        let err = parse_select("SELECT FROM").unwrap_err();
        assert!(err.offset > 0);
        assert!(parse_statement("FROB x").is_err());
        assert!(parse_expr("a +").is_err());
    }

    #[test]
    fn tpch_q3_parses() {
        let q3 = "select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue, o_orderdate, o_shippriority \
                  from customer, orders, lineitem \
                  where c_mktsegment = 'BUILDING' and c_custkey = o_custkey and l_orderkey = o_orderkey \
                    and o_orderdate < date '1995-03-15' and l_shipdate > date '1995-03-15' \
                  group by l_orderkey, o_orderdate, o_shippriority \
                  order by revenue desc, o_orderdate limit 10";
        let s = parse_select(q3).unwrap();
        assert_eq!(s.from.len(), 3);
        assert_eq!(s.group_by.len(), 3);
    }

    #[test]
    fn tpch_q8_parses() {
        let q8 = "select o_year, sum(case when nation = 'BRAZIL' then volume else 0 end) / sum(volume) as mkt_share \
                  from (select extract(year from o_orderdate) as o_year, l_extendedprice * (1 - l_discount) as volume, n2.n_name as nation \
                        from part, supplier, lineitem, orders, customer, nation n1, nation n2, region \
                        where p_partkey = l_partkey and s_suppkey = l_suppkey and l_orderkey = o_orderkey \
                          and o_custkey = c_custkey and c_nationkey = n1.n_nationkey and n1.n_regionkey = r_regionkey \
                          and r_name = 'AMERICA' and s_nationkey = n2.n_nationkey \
                          and o_orderdate between date '1995-01-01' and date '1996-12-31' \
                          and p_type = 'ECONOMY ANODIZED STEEL') as all_nations \
                  group by o_year order by o_year";
        let s = parse_select(q8).unwrap();
        match &s.from[0] {
            TableRef::Derived { query, .. } => assert_eq!(query.from.len(), 8),
            other => panic!("expected derived table, got {other:?}"),
        }
    }
}
