//! SQL frontend edge cases: lexical oddities, quoting, precedence corners,
//! and error reporting across lexer → parser → binder.

use xdb_sql::algebra::plan_to_select;
use xdb_sql::bind::{bind_select, ResolvedRelation, SchemaProvider};
use xdb_sql::display::{render_select_string, render_statement, Dialect};
use xdb_sql::value::DataType;
use xdb_sql::{parse_expr, parse_script, parse_select, parse_statement};

struct OneTable;

impl SchemaProvider for OneTable {
    fn resolve_relation(&self, name: &str) -> Option<ResolvedRelation> {
        name.eq_ignore_ascii_case("t")
            .then(|| ResolvedRelation::Base {
                fields: vec![
                    ("a".to_string(), DataType::Int),
                    ("b".to_string(), DataType::Str),
                    ("select".to_string(), DataType::Int), // reserved-word column
                ],
            })
    }
}

#[test]
fn quoted_keywords_as_identifiers() {
    let s = parse_select("SELECT \"select\" FROM t WHERE \"select\" > 1").unwrap();
    let plan = bind_select(&s, &OneTable).unwrap();
    assert_eq!(plan.schema().fields[0].name, "select");
    // Round-trip keeps the quoting.
    let rendered = render_select_string(&s, Dialect::Generic);
    assert!(rendered.contains("\"select\""), "{rendered}");
    parse_select(&rendered).unwrap();
}

#[test]
fn backtick_quoting_in_mariadb_dialect() {
    let s = parse_select("SELECT `select` FROM t").unwrap();
    let rendered = render_select_string(&s, Dialect::MariaDbLike);
    assert!(rendered.contains("`select`"), "{rendered}");
}

#[test]
fn unicode_string_literals() {
    let e = parse_expr("'héllo wörld — ±∞'").unwrap();
    let rendered = xdb_sql::display::render_expr_string(&e, Dialect::Generic);
    assert_eq!(parse_expr(&rendered).unwrap(), e);
}

#[test]
fn deeply_nested_parentheses() {
    let mut sql = String::from("1");
    for _ in 0..60 {
        sql = format!("({sql} + 1)");
    }
    parse_expr(&sql).unwrap();
}

#[test]
fn comments_everywhere() {
    let s = parse_select("SELECT /* head */ a -- trailing\n FROM /* mid */ t WHERE a > 0 -- tail")
        .unwrap();
    assert_eq!(s.projection.len(), 1);
}

#[test]
fn semicolon_handling_in_scripts() {
    assert_eq!(parse_script(";;;").unwrap().len(), 0);
    assert_eq!(
        parse_script("SELECT 1 AS x;; SELECT 2 AS y;")
            .unwrap()
            .len(),
        2
    );
}

#[test]
fn not_precedence_binds_tighter_than_and() {
    // NOT a AND b  ==  (NOT a) AND b
    let e = parse_expr("not a = 1 and b = 2").unwrap();
    match e {
        xdb_sql::Expr::Binary {
            op: xdb_sql::ast::BinaryOp::And,
            ..
        } => {}
        other => panic!("expected AND at top, got {other:?}"),
    }
}

#[test]
fn between_binds_its_and() {
    // BETWEEN's AND must not be confused with logical AND.
    let e = parse_expr("a between 1 and 2 and b = 3").unwrap();
    match e {
        xdb_sql::Expr::Binary {
            op: xdb_sql::ast::BinaryOp::And,
            left,
            ..
        } => assert!(matches!(*left, xdb_sql::Expr::Between { .. })),
        other => panic!("expected AND(between, eq), got {other:?}"),
    }
}

#[test]
fn chained_comparison_rejected() {
    assert!(parse_expr("a = b = c").is_err());
}

#[test]
fn error_offsets_point_into_input() {
    let err = parse_select("SELECT a FROM t WHERE").unwrap_err();
    assert!(err.offset >= "SELECT a FROM t WHERE".len() - 1);
    let err = parse_select("SELECT a FRUM t").unwrap_err();
    assert!(err.offset > 0);
}

#[test]
fn binder_reports_bad_ordinals() {
    let s = parse_select("SELECT a FROM t GROUP BY 7").unwrap();
    let err = bind_select(&s, &OneTable).unwrap_err();
    assert!(err.message.contains("ordinal"), "{}", err.message);
    let s = parse_select("SELECT a, count(*) FROM t GROUP BY a ORDER BY 9").unwrap();
    let err = bind_select(&s, &OneTable).unwrap_err();
    assert!(err.message.contains("ordinal"), "{}", err.message);
}

#[test]
fn ambiguous_column_reported() {
    struct TwoTables;
    impl SchemaProvider for TwoTables {
        fn resolve_relation(&self, name: &str) -> Option<ResolvedRelation> {
            matches!(name, "x" | "y").then(|| ResolvedRelation::Base {
                fields: vec![("k".to_string(), DataType::Int)],
            })
        }
    }
    let s = parse_select("SELECT k FROM x, y").unwrap();
    let err = bind_select(&s, &TwoTables).unwrap_err();
    assert!(err.message.contains("ambiguous"), "{}", err.message);
}

#[test]
fn plan_to_select_roundtrips_reserved_columns() {
    let s = parse_select("SELECT \"select\" AS s2 FROM t WHERE \"select\" IN (1, 2)").unwrap();
    let plan = bind_select(&s, &OneTable).unwrap();
    let lowered = plan_to_select(&plan).unwrap();
    let sql = render_select_string(&lowered, Dialect::Generic);
    // Must re-parse and re-bind.
    let reparsed = parse_select(&sql).unwrap();
    bind_select(&reparsed, &OneTable).unwrap();
}

#[test]
fn ddl_dialect_rendering_quotes_consistently() {
    let stmt = parse_statement(
        "CREATE FOREIGN TABLE \"weird name\" (a BIGINT) SERVER s OPTIONS (remote 'r''s')",
    )
    .unwrap();
    for d in [
        Dialect::PostgresLike,
        Dialect::MariaDbLike,
        Dialect::HiveLike,
    ] {
        let rendered = render_statement(&stmt, d);
        let reparsed =
            parse_statement(&rendered).unwrap_or_else(|e| panic!("{d:?}: {e}\n{rendered}"));
        assert_eq!(reparsed, stmt, "{rendered}");
    }
}

#[test]
fn float_literal_precision_survives() {
    for lit in ["0.1", "3.141592653589793", "1e10", "2.5e-3"] {
        let e = parse_expr(lit).unwrap();
        let rendered = xdb_sql::display::render_expr_string(&e, Dialect::Generic);
        assert_eq!(parse_expr(&rendered).unwrap(), e, "{lit} → {rendered}");
    }
}

#[test]
fn empty_input_is_an_error() {
    assert!(parse_statement("").is_err());
    assert!(parse_expr("").is_err());
    assert!(parse_script("").map(|v| v.is_empty()).unwrap_or(false));
}

#[test]
fn case_without_when_rejected() {
    assert!(parse_expr("case end").is_err());
    assert!(parse_expr("case a end").is_err());
}

#[test]
fn limit_requires_nonnegative_integer() {
    assert!(parse_select("SELECT a FROM t LIMIT -1").is_err());
    assert!(parse_select("SELECT a FROM t LIMIT x").is_err());
}
